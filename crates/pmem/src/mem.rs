//! The simulated machine: [`PMem`] (the persistent memory plus per-process system
//! state) and [`PThread`] (a process's handle through which every simulated
//! instruction is issued).
//!
//! All shared-memory instructions of the paper's model — `Read`, `Write`, `CAS` —
//! plus the persistence instructions of the shared-cache variant — `flush`
//! (`clflushopt`) and `fence` (`sfence`) — are methods on [`PThread`]. Each call
//! counts towards the thread's [`Stats`] and passes a crash point, so the same code
//! path serves throughput benchmarks (crash policy [`CrashPolicy::Never`]) and
//! crash-torture tests (probabilistic or targeted policies).

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::addr::PAddr;
use crate::align::CacheAligned;
use crate::arena::{Arena, Word, SEGMENT_WORDS};
use crate::audit::FlushAuditor;
use crate::crash::{raise_crash, ArmedPolicy, CrashPolicy, CrashSchedule};
use crate::hb::HbAnalyzer;
use crate::mode::Mode;
use crate::sched::{SchedAction, ThreadScheduler};
use crate::stats::{StatCells, Stats};
use crate::LINE_WORDS;

/// Configuration for a simulated machine.
#[derive(Clone, Debug)]
pub struct MemConfig {
    /// Number of processes (threads) the machine supports.
    pub threads: usize,
    /// Cache model (private-cache PPM model or shared-cache model).
    pub mode: Mode,
}

impl MemConfig {
    /// A machine with `threads` processes using the default (shared-cache) model.
    pub fn new(threads: usize) -> MemConfig {
        MemConfig {
            threads,
            mode: Mode::default(),
        }
    }

    /// Select the cache model.
    pub fn mode(mut self, mode: Mode) -> MemConfig {
        self.mode = mode;
        self
    }
}

/// Per-thread options controlling how instructions are issued.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadOptions {
    /// Apply the Izraelevitz et al. construction automatically: flush the accessed
    /// cache line after *every* shared-memory access (and fence after updates).
    /// This is how Figure 5's variants obtain durable linearizability without any
    /// algorithm-specific reasoning (§9, §10).
    pub izraelevitz: bool,
}

/// System-area word (inside the arena's reserved first line) durably holding
/// the raw base address of the per-process restart-pointer array. Written at
/// machine construction; read by [`PMem::with_arena`] so a machine re-attached
/// over a surviving medium finds the same restart words.
const SYS_RESTART_BASE: PAddr = PAddr(1);
/// System-area word durably holding the process count the medium was laid out
/// for (guards [`PMem::with_arena`] against re-attaching with a different
/// process count, which would mis-address the restart array).
const SYS_THREADS: PAddr = PAddr(2);

/// The simulated persistent machine: word arena, per-process crashed flags and
/// restart pointers, and the crash counter.
///
/// The arena — the persistent *medium* — is reference-counted and detachable
/// from the machine — the *process*: [`arena_handle`](PMem::arena_handle)
/// shares it, [`with_arena`](PMem::with_arena) boots a fresh machine over a
/// surviving medium (a process restart after a crash), and
/// [`swap_arena`](PMem::swap_arena) redirects a live machine to a different
/// medium. Multiple machines over multiple arenas coexist and recover
/// independently — the sharded-service scenario.
pub struct PMem {
    /// The current medium. Behind a lock only for [`swap_arena`](PMem::swap_arena);
    /// the instruction hot path never takes it (per-thread segment caches keyed
    /// by arena identity absorb nearly every resolution).
    arena: RwLock<Arc<Arena>>,
    /// Mirror of the current arena's identity, so the per-instruction segment
    /// cache check is one relaxed load instead of a lock acquisition.
    arena_id: AtomicU64,
    /// Every arena this machine ever used (swapped-out media). Retained for the
    /// machine's lifetime so `&[Word]` slices handed to thread handles before a
    /// swap stay valid — see the safety argument on `PThread::segment_at_slow`.
    retired: Mutex<Vec<Arc<Arena>>>,
    mode: Mode,
    threads: usize,
    crashed: Vec<AtomicBool>,
    restart_base: PAddr,
    crash_events: AtomicU64,
    auditor: FlushAuditor,
    /// The happens-before analyzer (`DF_HB`): vector-clock data-race and
    /// persist-order checking over the instruction stream, disarmed by default.
    hb: HbAnalyzer,
    /// Whether thread handles elide provably no-op duplicate flushes
    /// (`DF_COALESCE`, default on; shared-cache model only — the private-cache
    /// model has no flush work to elide).
    coalesce: bool,
}

impl PMem {
    /// Build a machine over a fresh arena.
    pub fn new(config: MemConfig) -> PMem {
        assert!(config.threads > 0, "a machine needs at least one process");
        let arena = Arena::new(crate::LINE_WORDS);
        // One persistent restart-pointer word per process, each on its own line so
        // that processes never contend on the same line for their private system
        // state (capsule boundaries are local operations — Theorem 5.1).
        let restart_base = arena.alloc(config.threads as u64 * crate::LINE_WORDS);
        // Make the medium self-describing: a later machine incarnation attaching
        // to this arena (`with_arena`) rediscovers the restart array from the
        // reserved system line instead of trusting the caller to recompute it.
        arena.word(SYS_RESTART_BASE).store(restart_base.to_raw());
        arena.word(SYS_THREADS).store(config.threads as u64);
        PMem::assemble(config, Arc::new(arena), restart_base)
    }

    /// Boot a machine over a surviving medium — the process-restart half of a
    /// crash-recovery cycle. The arena must have been initialised by a previous
    /// [`PMem::new`] with the same process count; the restart-pointer array is
    /// rediscovered from the medium's system area, so capsule runtimes can
    /// resume from their restart pointers exactly where the dead incarnation
    /// left them.
    pub fn with_arena(config: MemConfig, arena: Arc<Arena>) -> PMem {
        assert!(config.threads > 0, "a machine needs at least one process");
        let stored_threads = arena.word(SYS_THREADS).load();
        assert_eq!(
            stored_threads, config.threads as u64,
            "arena was laid out for {stored_threads} processes, machine wants {}",
            config.threads
        );
        let restart_base = PAddr::from_raw(arena.word(SYS_RESTART_BASE).load());
        assert!(!restart_base.is_null(), "arena has no restart area (not initialised by PMem::new)");
        PMem::assemble(config, arena, restart_base)
    }

    fn assemble(config: MemConfig, arena: Arc<Arena>, restart_base: PAddr) -> PMem {
        let mem = PMem {
            arena_id: AtomicU64::new(arena.id()),
            arena: RwLock::new(arena),
            retired: Mutex::new(Vec::new()),
            mode: config.mode,
            threads: config.threads,
            crashed: (0..config.threads).map(|_| AtomicBool::new(false)).collect(),
            restart_base,
            crash_events: AtomicU64::new(0),
            auditor: FlushAuditor::new(),
            hb: HbAnalyzer::new(),
            // `DF_COALESCE=0` disables per-line flush coalescing (the "before"
            // measurement mode: duplicate flushes are still *counted*, just not
            // elided). Anything else — including unset — leaves it on.
            coalesce: config.mode == Mode::SharedCache
                && std::env::var_os("DF_COALESCE").map_or(true, |v| v != "0" && !v.is_empty()),
        };
        // `DF_FLUSH_AUDIT=1` arms the flush-order auditor on every machine the
        // process creates — the switch the CI audit-armed tier-1 run uses. Only
        // meaningful in the shared-cache model (the private-cache model has no
        // flush ordering to audit).
        if config.mode == Mode::SharedCache {
            if let Some(v) = std::env::var_os("DF_FLUSH_AUDIT") {
                if v != "0" && !v.is_empty() {
                    mem.auditor.arm();
                }
            }
            // `DF_HB=1` arms the happens-before analyzer the same way — the
            // switch behind the CI hb-armed tier-1 run and the dfck jobs.
            // Shared-cache only: the private-cache model has no flush/fence
            // ordering, and its per-process crashes never roll memory back.
            if let Some(v) = std::env::var_os("DF_HB") {
                if v != "0" && !v.is_empty() {
                    mem.hb.arm();
                }
            }
        }
        mem.arena().persist_all();
        mem
    }

    /// Convenience constructor: `threads` processes, shared-cache model.
    pub fn with_threads(threads: usize) -> PMem {
        PMem::new(MemConfig::new(threads))
    }

    /// A shared handle to the current medium. Hold it across the machine's
    /// death to re-attach with [`with_arena`](PMem::with_arena) — the
    /// shard-restart idiom of the service harness.
    pub fn arena_handle(&self) -> Arc<Arena> {
        self.arena.read().clone()
    }

    /// Redirect this machine to a different medium, returning the one it was
    /// using. The old arena is additionally retained by the machine (slices
    /// cached by thread handles must outlive the swap); handles notice the
    /// identity change at their next access and re-resolve against the new
    /// arena.
    ///
    /// Quiescence contract as for [`crash_all`](PMem::crash_all): no thread may
    /// be executing simulated instructions concurrently with the swap.
    pub fn swap_arena(&self, arena: Arc<Arena>) -> Arc<Arena> {
        let mut cur = self.arena.write();
        let old = std::mem::replace(&mut *cur, arena);
        self.retired.lock().push(old.clone());
        // SeqCst: the id must be globally ordered after the arena swap above
        // so auditor/analyzer hooks never key state under the old arena's id.
        self.arena_id.store(cur.id(), Ordering::SeqCst);
        old
    }

    /// The cache model of this machine.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Number of processes.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Obtain the instruction handle for process `pid` with default options.
    pub fn thread(&self, pid: usize) -> PThread<'_> {
        self.thread_with(pid, ThreadOptions::default())
    }

    /// Obtain the instruction handle for process `pid` with explicit options.
    pub fn thread_with(&self, pid: usize, opts: ThreadOptions) -> PThread<'_> {
        assert!(pid < self.threads, "pid {pid} out of range (machine has {} processes)", self.threads);
        let hb_armed = self.mode == Mode::SharedCache && self.hb.is_armed();
        if hb_armed {
            // Handle creation is a happens-before edge: everything every pid
            // executed so far precedes what this handle does next (handles are
            // `!Send`, so the handle's thread really is downstream of a host
            // synchronization edge from wherever that history was produced).
            self.hb.locked().on_thread(pid);
        }
        PThread {
            mem: self,
            pid,
            mode: self.mode,
            opts,
            stats: CacheAligned::new(StatCells::default()),
            schedule: RefCell::new(Box::new(ArmedPolicy::arm(CrashPolicy::Never, pid))),
            hot_armed: Cell::new(if hb_armed { PThread::ARMED_HB } else { 0 }),
            audit_armed: Cell::new(self.mode == Mode::SharedCache && self.auditor.is_armed()),
            scheduler: RefCell::new(None),
            killed: Cell::new(false),
            last_sched_step: Cell::new(0),
            step: Cell::new(0),
            step_base: Cell::new(0),
            in_recovery: Cell::new(false),
            seg_cache: Cell::new(None),
            coalesce: Cell::new(self.coalesce),
            pending_lines: Default::default(),
            pending_len: Cell::new(0),
        }
    }

    /// The machine's [`FlushAuditor`]. Arm it *before* creating thread handles
    /// (or call [`PThread::refresh_flush_audit`] on existing ones) so the
    /// per-thread fast flag picks the armed state up.
    pub fn flush_auditor(&self) -> &FlushAuditor {
        &self.auditor
    }

    /// The machine's happens-before analyzer ([`HbAnalyzer`]). Arm it *before*
    /// creating thread handles (or call [`PThread::refresh_hb`] on existing
    /// ones) so the per-thread packed fast flag picks the armed state up.
    pub fn hb(&self) -> &HbAnalyzer {
        &self.hb
    }

    /// The persistent word holding process `pid`'s restart pointer (§2.1). The
    /// capsule runtime stores the address of the active persistent stack frame here.
    pub fn restart_word(&self, pid: usize) -> PAddr {
        assert!(pid < self.threads);
        self.restart_base.offset(pid as u64 * crate::LINE_WORDS)
    }

    /// Simulate a full-system crash (shared-cache model): every un-flushed cache
    /// line reverts to its durable contents and every process's crashed flag is set.
    ///
    /// The caller must ensure quiescence — no thread may be executing simulated
    /// instructions concurrently with the rollback (in the experiments this is
    /// guaranteed because worker threads have either finished or been unwound by a
    /// [`CrashSignal`](crate::CrashSignal) before the harness calls this).
    pub fn crash_all(&self) {
        if self.mode == Mode::SharedCache {
            // SeqCst: pairs with the `swap_arena` store — the crash must be
            // attributed to the arena every quiesced thread last wrote.
            let arena_id = self.arena_id.load(Ordering::SeqCst);
            if self.auditor.is_armed() {
                // Any line still published-but-unflushed at this instant is
                // about to be destroyed while a durable pointer may reference
                // it — the deterministic form of the descriptor flush gap.
                self.auditor.note_system_crash(arena_id);
            }
            if self.hb.is_armed() {
                // The crash is a happens-before barrier (recovery is ordered
                // after everything pre-crash), and exposures whose publisher
                // may have persisted become cross-failure hazards: their words
                // are flagged at the first post-crash read.
                self.hb.locked().note_system_crash(arena_id);
            }
            self.arena().rollback_all();
        }
        for flag in &self.crashed {
            // SeqCst: the crashed flags and the event counter below form one
            // total order with the rollback — `take_crashed` on any thread
            // must not observe the count without its flag.
            flag.store(true, Ordering::SeqCst);
        }
        // SeqCst: see the flag stores above.
        self.crash_events.fetch_add(1, Ordering::SeqCst);
    }

    /// Simulate an independent crash of a single process (private-cache model):
    /// its volatile state is gone (the thread was unwound), persistent memory is
    /// untouched, and its crashed flag is set so `crashed()` reports the fault.
    pub fn crash_thread(&self, pid: usize) {
        assert!(pid < self.threads);
        // SeqCst: as in `crash_all` — flag and counter stay in one total
        // order so observers cannot see the event without the flag.
        self.crashed[pid].store(true, Ordering::SeqCst);
        // SeqCst: see the flag store above.
        self.crash_events.fetch_add(1, Ordering::SeqCst);
    }

    /// The `crashed()` system call of §2.1: returns whether process `pid` has
    /// crashed since the last call, and resets the flag.
    pub fn take_crashed(&self, pid: usize) -> bool {
        // SeqCst: the crashed() syscall of the model — consuming the flag is
        // ordered against the injecting store so a crash is seen exactly once.
        self.crashed[pid].swap(false, Ordering::SeqCst)
    }

    /// Peek at the crashed flag without resetting it.
    pub fn peek_crashed(&self, pid: usize) -> bool {
        // SeqCst: same total order as `take_crashed`, minus the reset.
        self.crashed[pid].load(Ordering::SeqCst)
    }

    /// Total number of crash events (system-wide or per-process) injected so far.
    pub fn crash_events(&self) -> u64 {
        // SeqCst: reads the injection sites' total order (see `crash_all`).
        self.crash_events.load(Ordering::SeqCst)
    }

    /// Number of persistent words allocated so far.
    pub fn allocated_words(&self) -> u64 {
        self.arena().allocated_words()
    }

    /// Read the *durable* copy of a word — what would survive a crash right now.
    /// Only used by tests and assertions about durability; algorithms must go
    /// through [`PThread::read`].
    pub fn durable_read(&self, addr: PAddr) -> u64 {
        self.arena().word(addr).durable()
    }

    /// Read the cached copy of a word without a thread handle (test helper; not an
    /// instruction of the model and not counted in any statistics).
    pub fn peek(&self, addr: PAddr) -> u64 {
        self.arena().word(addr).load()
    }

    /// Mark everything currently in memory as durable. Experiments call this after
    /// building an initial state (e.g. pre-filling a queue) so that subsequent
    /// crashes exercise only the algorithm under test.
    pub fn persist_everything(&self) {
        self.arena().persist_all();
        // SeqCst: pairs with the `swap_arena` store, as in `crash_all`.
        let arena_id = self.arena_id.load(Ordering::SeqCst);
        // Everything is durable: no line is dirty (or exposed) any more.
        self.auditor.clear_state(arena_id);
        self.hb.locked().note_persist_all(arena_id);
    }

    pub(crate) fn arena(&self) -> Arc<Arena> {
        self.arena.read().clone()
    }
}

impl std::fmt::Debug for PMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PMem")
            .field("mode", &self.mode)
            .field("threads", &self.threads)
            .field("allocated_words", &self.allocated_words())
            .field("crash_events", &self.crash_events())
            .finish()
    }
}

/// Capacity of the per-thread flush-coalescing window (distinct cache lines
/// tracked between two fences). The durable code paths in this workspace touch
/// at most a handful of lines per fence window (a capsule frame line, an
/// announcement line, a node line), so a small fixed window catches virtually
/// every duplicate without a hash set on the hot path.
const COALESCE_LINES: usize = 8;

/// A process's handle onto the machine. One per OS thread; not `Sync`.
///
/// Every method that touches persistent memory is an *instruction* in the sense of
/// the paper: it is counted in [`Stats`] and passes a crash point governed by the
/// thread's [`CrashPolicy`].
///
/// The handle is the simulator's hottest layer, so its per-instruction state is
/// all plain [`Cell`]s: counting is a branchless load/add/store per counter, the
/// crash point is a single test of the pre-computed `hot_armed` byte (zero for
/// every throughput run), and the last-touched arena segment is cached so
/// consecutive accesses skip the segment-table lookup entirely.
pub struct PThread<'m> {
    mem: &'m PMem,
    pid: usize,
    /// Copy of the machine's cache model, so the store path does not chase the
    /// `mem` pointer just to branch on it.
    mode: Mode,
    opts: ThreadOptions,
    /// Live per-instruction counters, padded to a full host cache line
    /// ([`CacheAligned`]) so handles that end up adjacent in one allocation
    /// (a harness `Vec`, scoped-thread captures) never false-share the
    /// hottest cells in the simulator.
    stats: CacheAligned<StatCells>,
    /// Installed crash schedule. Only consulted when the `ARMED_CRASH` bit of
    /// `hot_armed` is set, so both the `RefCell` borrow bookkeeping and the
    /// dynamic dispatch are off the throughput path entirely.
    schedule: RefCell<Box<dyn CrashSchedule>>,
    /// Pre-computed per-instruction fast flags, packed into one byte so the
    /// hot path ([`bump`](PThread::bump)) stays a single load + zero test no
    /// matter how many hooks exist. `ARMED_CRASH` is maintained by
    /// [`set_crash_schedule`](PThread::set_crash_schedule) and cleared when a
    /// schedule reports itself disarmed after a consultation; `ARMED_SCHED`
    /// mirrors whether a [`ThreadScheduler`] is installed.
    hot_armed: Cell<u8>,
    /// Pre-computed fast flag for the flush-order auditor (same pattern, but
    /// separate from `hot_armed`: it guards the flush/read paths, not the
    /// per-instruction step). Mirrors the machine's [`FlushAuditor`] armed
    /// state at handle creation, refreshed by
    /// [`refresh_flush_audit`](PThread::refresh_flush_audit). Always `false`
    /// in the private-cache model.
    audit_armed: Cell<bool>,
    /// The deterministic interleaving scheduler, when one is installed. Only
    /// consulted behind the `ARMED_SCHED` fast bit, so replays without a
    /// scheduler (every throughput run) never touch it.
    scheduler: RefCell<Option<Arc<ThreadScheduler>>>,
    /// Set when the scheduler delivered a kill (a peer's full-system crash) at
    /// one of this thread's yield points; consumed by [`take_killed`](PThread::take_killed)
    /// so the crash handler can tell collateral kills from scheduled crashes.
    killed: Cell<bool>,
    /// Global (cross-process) index of the last instruction the scheduler
    /// granted this thread — the logical clock concurrent-history oracles use
    /// for linearization timestamps. Zero without a scheduler.
    last_sched_step: Cell<u64>,
    step: Cell<u64>,
    /// Value of `step` at the last [`take_stats`](PThread::take_stats), so the
    /// `crash_points` field of a snapshot is windowed like every other counter
    /// while the step counter itself stays monotone (absolute [`CrashPolicy::AtStep`]
    /// schedules depend on that).
    step_base: Cell<u64>,
    in_recovery: Cell<bool>,
    /// Per-thread cache of the last resolved arena segment, keyed by
    /// `(arena identity, segment index)`. The identity key makes the cache
    /// swap-safe: after [`PMem::swap_arena`] the machine's mirrored identity no
    /// longer matches and the next access re-resolves against the new arena.
    /// The borrow stays valid for the handle's lifetime because segments never
    /// move once created (boxed slices behind `OnceLock`s) and the machine
    /// retains every arena it ever used.
    seg_cache: Cell<Option<(u64, usize, &'m [Word])>>,
    /// Flush coalescing is enabled for this handle (mirrors the machine's
    /// `DF_COALESCE` decision; shared-cache model only).
    coalesce: Cell<bool>,
    /// Line bases this thread has flushed since its last fence — the per-line
    /// coalescing window. Bounded: once full, further lines simply are not
    /// tracked (their flushes execute normally). Entries are dropped when this
    /// thread re-dirties the line (write / successful CAS / fetch-add), and the
    /// whole set empties at the fence.
    pending_lines: [Cell<u64>; COALESCE_LINES],
    /// Number of live entries in `pending_lines`.
    pending_len: Cell<usize>,
}

impl<'m> PThread<'m> {
    /// `hot_armed` bit: the installed crash schedule can still fire.
    const ARMED_CRASH: u8 = 1;
    /// `hot_armed` bit: a [`ThreadScheduler`] is installed.
    const ARMED_SCHED: u8 = 2;
    /// `hot_armed` bit: the machine's [`HbAnalyzer`] is armed for this handle.
    /// Unlike the other two bits this one guards the instruction *bodies*
    /// (each access runs under the analyzer lock), not the `bump` step.
    const ARMED_HB: u8 = 4;

    /// Set or clear one `hot_armed` bit.
    #[inline]
    fn set_hot(&self, bit: u8, on: bool) {
        let cur = self.hot_armed.get();
        self.hot_armed.set(if on { cur | bit } else { cur & !bit });
    }

    /// The process id of this handle.
    #[inline]
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// The machine this handle belongs to.
    #[inline]
    pub fn mem(&self) -> &'m PMem {
        self.mem
    }

    /// The options this handle was created with.
    pub fn options(&self) -> ThreadOptions {
        self.opts
    }

    /// Install a crash policy. Replaces (and re-arms) any previous schedule. A
    /// [`CrashPolicy::Random`] policy is armed with a pid-derived RNG stream, so
    /// installing the same policy on every thread of a torture test yields
    /// independent crash sequences.
    pub fn set_crash_policy(&self, policy: CrashPolicy) {
        self.set_crash_schedule(ArmedPolicy::arm(policy, self.pid));
    }

    /// Install an arbitrary [`CrashSchedule`] (e.g. a scripted
    /// [`CrashPlan`](crate::CrashPlan)). Replaces any previous schedule; the
    /// pre-computed fast flag is refreshed so a disarmed schedule keeps the
    /// per-instruction crash point branch-free.
    pub fn set_crash_schedule(&self, schedule: impl CrashSchedule + 'static) {
        self.set_hot(Self::ARMED_CRASH, schedule.is_armed());
        *self.schedule.borrow_mut() = Box::new(schedule);
    }

    /// Disable crash injection (equivalent to installing [`CrashPolicy::Never`]).
    pub fn disarm_crashes(&self) {
        self.set_crash_policy(CrashPolicy::Never);
    }

    /// Re-mirror the machine's [`FlushAuditor`] armed state into this handle's
    /// fast flag (for handles created before the auditor was armed/disarmed).
    pub fn refresh_flush_audit(&self) {
        self.audit_armed
            .set(self.mode == Mode::SharedCache && self.mem.auditor.is_armed());
    }

    /// Re-mirror the machine's [`HbAnalyzer`] armed state into this handle's
    /// packed fast-flag byte (for handles created before the analyzer was
    /// armed/disarmed). Arming re-draws the handle-creation edge: everything
    /// executed so far happens-before this handle's next instruction.
    pub fn refresh_hb(&self) {
        let on = self.mode == Mode::SharedCache && self.mem.hb.is_armed();
        if on {
            self.mem.hb.locked().on_thread(self.pid);
        }
        self.set_hot(Self::ARMED_HB, on);
    }

    /// Snapshot of this thread's statistics. The `crash_points` field is sourced
    /// from the step counter: every counted instruction plus every explicit
    /// [`crash_point`](PThread::crash_point) call passed one crash point.
    pub fn stats(&self) -> Stats {
        let mut snap = self.stats.snapshot();
        snap.crash_points = self.step.get() - self.step_base.get();
        snap
    }

    /// Snapshot and reset this thread's statistics (including the `crash_points`
    /// window; the underlying step counter stays monotone so absolute
    /// [`CrashPolicy::AtStep`] schedules are unaffected).
    pub fn take_stats(&self) -> Stats {
        let mut snap = self.stats.take();
        let step = self.step.get();
        snap.crash_points = step - self.step_base.get();
        self.step_base.set(step);
        snap
    }

    /// Total crash points this thread has passed over its lifetime (the step
    /// counter): one per counted instruction plus one per explicit
    /// [`crash_point`](PThread::crash_point) call. The exhaustive `dfck` sweeper
    /// enumerates exactly this range.
    pub fn crash_points(&self) -> u64 {
        self.step.get()
    }

    /// Record that this thread observed a simulated crash (increments the crash
    /// counter in [`Stats`]); called by the capsule runtime when it catches a
    /// [`CrashSignal`](crate::CrashSignal).
    pub fn note_crash(&self) {
        StatCells::add(&self.stats.crashes, 1);
        // A crash ends the fence window: recovery starts with a fresh
        // coalescing set. (Stale entries would still be harmless — elision is
        // gated on the line being clean — but the window is per-execution.)
        self.pending_len.set(0);
    }

    /// Whether this handle elides provably no-op duplicate flushes.
    pub fn coalescing(&self) -> bool {
        self.coalesce.get()
    }

    /// Enable or disable flush coalescing for this handle (overrides the
    /// machine-level `DF_COALESCE` default; duplicate flushes are counted
    /// either way).
    pub fn set_coalesce(&self, on: bool) {
        self.coalesce.set(on && self.mode == Mode::SharedCache);
    }

    /// Begin counting instructions as *recovery* steps (for recovery-delay
    /// measurements). Recovery steps are counted in addition to their normal
    /// category.
    pub fn begin_recovery(&self) {
        self.in_recovery.set(true);
    }

    /// Stop counting instructions as recovery steps.
    pub fn end_recovery(&self) {
        self.in_recovery.set(false);
    }

    /// Whether the thread is currently inside a recovery section.
    pub fn in_recovery(&self) -> bool {
        self.in_recovery.get()
    }

    /// The per-instruction accounting step: one counter increment, the optional
    /// recovery tally, the step counter, and the crash point. With the default
    /// [`CrashPolicy::Never`] and no scheduler (every throughput run) this is
    /// branch-plus-increment only — the armed-policy and scheduler machinery
    /// is behind the single pre-computed `hot_armed` byte.
    #[inline]
    fn bump(&self, counter: &Cell<u64>) {
        StatCells::add(counter, 1);
        if self.in_recovery.get() {
            StatCells::add(&self.stats.recovery_steps, 1);
        }
        let step = self.step.get() + 1;
        self.step.set(step);
        let armed = self.hot_armed.get();
        if armed != 0 {
            self.armed_hooks(armed, step);
        }
    }

    /// Slow path of the per-instruction hooks, dispatched off the single
    /// `hot_armed` test. Scheduler first, crash consult second: the crash
    /// (and any rollback / kill broadcast it triggers) then fires while this
    /// thread holds the baton, i.e. while every peer is parked before its
    /// next access.
    #[cold]
    fn armed_hooks(&self, armed: u8, step: u64) {
        if armed & Self::ARMED_SCHED != 0 {
            self.sched_point();
        }
        if armed & Self::ARMED_CRASH != 0 {
            self.consult_policy(step);
        }
    }

    /// Slow path of a crash point: consult the installed schedule, raise the crash
    /// if it fires, and drop the fast flag once the schedule has spent itself.
    #[cold]
    fn consult_policy(&self, step: u64) {
        let mut schedule = self.schedule.borrow_mut();
        if schedule.should_crash(step) {
            // Refresh the fast flag *before* unwinding so that a spent one-shot
            // schedule stops costing the slow path once the crash is caught, while
            // a multi-crash CrashPlan stays armed for its next script element.
            self.set_hot(Self::ARMED_CRASH, schedule.is_armed());
            drop(schedule);
            raise_crash(self.pid, step);
        }
        if !schedule.is_armed() {
            drop(schedule);
            self.set_hot(Self::ARMED_CRASH, false);
        }
    }

    /// An explicit crash point between instructions (the model allows a crash at
    /// any moment, not only during memory accesses).
    #[inline]
    pub fn crash_point(&self) {
        let step = self.step.get() + 1;
        self.step.set(step);
        let armed = self.hot_armed.get();
        if armed != 0 {
            self.armed_hooks(armed, step);
        }
    }

    /// Slow path of the scheduler hook: block until the installed
    /// [`ThreadScheduler`] grants this instruction, or raise a crash if a
    /// peer's full-system crash killed this thread while it was parked.
    #[cold]
    fn sched_point(&self) {
        let sched = self.scheduler.borrow().clone();
        let Some(sched) = sched else { return };
        match sched.yield_point(self.pid) {
            SchedAction::Run(global) => self.last_sched_step.set(global),
            SchedAction::Kill => {
                self.killed.set(true);
                raise_crash(self.pid, self.step.get());
            }
        }
    }

    // ----- deterministic interleaving (behind the `ARMED_SCHED` fast bit) ----

    /// Install a [`ThreadScheduler`]: registers this thread as a participant
    /// and routes every subsequent instruction through a scheduler yield point.
    /// The thread blocks at its first yield point until all participants have
    /// registered. Pair with [`clear_thread_scheduler`](PThread::clear_thread_scheduler)
    /// (or a [`FinishGuard`](crate::sched::FinishGuard)) so the baton skips
    /// this thread once it is done.
    pub fn set_thread_scheduler(&self, sched: Arc<ThreadScheduler>) {
        sched.register(self.pid);
        if self.hot_armed.get() & Self::ARMED_HB != 0 {
            // Scheduler registration is the worker's entry into a scheduled
            // window: the harness set-up that preceded it happens-before this
            // pid's scheduled instructions. Baton handovers *between* yield
            // points deliberately draw no edges — races in the scheduled
            // program must stay visible to the analyzer.
            self.mem.hb.locked().on_thread(self.pid);
        }
        *self.scheduler.borrow_mut() = Some(sched);
        self.set_hot(Self::ARMED_SCHED, true);
    }

    /// Remove the installed scheduler (marking this thread finished so the
    /// baton skips it) and return instructions to the un-scheduled fast path.
    /// Idempotent.
    pub fn clear_thread_scheduler(&self) {
        if let Some(sched) = self.scheduler.borrow_mut().take() {
            sched.finish(self.pid);
        }
        self.set_hot(Self::ARMED_SCHED, false);
    }

    /// Whether the last crash this thread observed was a *kill* — the
    /// collateral of a peer's full-system crash delivered at a yield point —
    /// rather than this thread's own crash schedule firing. Resets the marker.
    /// Crash handlers use this to skip re-applying machine-level crash effects
    /// that the crashing peer already applied.
    pub fn take_killed(&self) -> bool {
        self.killed.replace(false)
    }

    /// Broadcast a kill to every other scheduled participant (no-op without a
    /// scheduler). Called by the crash handler of a thread whose crash is
    /// *full-system* ([`PMem::crash_all`]): the peers are parked mid-access and
    /// must observe the same crash, which they do by raising a
    /// [`CrashSignal`](crate::CrashSignal) at their next yield point.
    pub fn kill_peers(&self) {
        if let Some(sched) = self.scheduler.borrow().as_ref() {
            sched.kill_peers(self.pid);
        }
    }

    /// Global (cross-process) index of the last instruction the scheduler
    /// granted this thread — a logical timestamp for concurrent-history
    /// oracles. Zero when no scheduler is (or was) installed.
    pub fn sched_step(&self) -> u64 {
        self.last_sched_step.get()
    }

    /// Resolve the word behind `addr`, going through the per-thread segment cache:
    /// consecutive accesses to the same 8 MiB segment (the overwhelmingly common
    /// case) cost an index computation and one comparison instead of a
    /// segment-table `OnceLock` load.
    #[inline]
    fn word_at(&self, addr: PAddr) -> &'m Word {
        let slice = self.segment_at(addr);
        &slice[addr.0 as usize % SEGMENT_WORDS]
    }

    /// The cache line containing `addr`, resolved once through the segment cache
    /// (a line never straddles segments).
    #[inline]
    fn line_at(&self, addr: PAddr) -> &'m [Word] {
        let slice = self.segment_at(addr);
        let off = addr.line_base().0 as usize % SEGMENT_WORDS;
        &slice[off..off + LINE_WORDS as usize]
    }

    #[inline]
    fn segment_at(&self, addr: PAddr) -> &'m [Word] {
        debug_assert!(!addr.is_null(), "dereferencing the null PAddr");
        let seg = addr.0 as usize / SEGMENT_WORDS;
        // `Relaxed` suffices for the identity mirror: an arena swap happens
        // under the same quiescence contract as `crash_all`, so the swap and
        // this access are already ordered by a join/channel edge; the load is
        // only here so a stale cache entry can never be *served*.
        let arena_id = self.mem.arena_id.load(Ordering::Relaxed);
        if let Some((cached_id, cached_seg, slice)) = self.seg_cache.get() {
            if cached_id == arena_id && cached_seg == seg {
                return slice;
            }
        }
        self.segment_at_slow(addr, seg)
    }

    #[cold]
    fn segment_at_slow(&self, addr: PAddr, seg: usize) -> &'m [Word] {
        StatCells::add(&self.stats.seg_resolves, 1);
        let arena = self.mem.arena();
        let slice = arena
            .segment(seg)
            .unwrap_or_else(|| panic!("access to unallocated persistent address {addr:?}"));
        // SAFETY: the slice is a boxed segment behind a `OnceLock`; it never
        // moves or drops while its arena is alive, and the machine `'m` keeps
        // every arena it ever used alive (the current one in `arena`, retired
        // ones in `retired`), so extending the borrow to `'m` is sound.
        let slice: &'m [Word] = unsafe { &*(slice as *const [Word]) };
        self.seg_cache.set(Some((arena.id(), seg, slice)));
        slice
    }

    /// The thread's monotonically increasing instruction counter.
    pub fn step_count(&self) -> u64 {
        self.step.get()
    }

    /// The current arena's identity, for keying auditor/analyzer state.
    #[inline]
    fn arena_key(&self) -> u64 {
        // Relaxed: swaps happen only at quiescent points (no handle mid-op),
        // and the key is only compared for equality, never dereferenced.
        self.mem.arena_id.load(Ordering::Relaxed)
    }

    // ----- flush-order auditor hooks (behind the `audit_armed` fast flag) -----

    #[cold]
    fn audit_read(&self, addr: PAddr) {
        if self.mem.auditor.note_read(
            self.pid,
            self.arena_key(),
            addr.line_base().0,
            self.step.get(),
        ) {
            StatCells::add(&self.stats.audit_flags, 1);
        }
    }

    #[cold]
    fn audit_store(&self, addr: PAddr) {
        self.mem
            .auditor
            .note_store(self.pid, self.arena_key(), addr.line_base().0);
    }

    #[cold]
    fn audit_publish(&self, addr: PAddr) {
        self.mem
            .auditor
            .note_publish(self.pid, self.arena_key(), addr.line_base().0);
    }

    #[cold]
    fn audit_flush(&self, addr: PAddr) {
        self.mem
            .auditor
            .note_flush(self.arena_key(), addr.line_base().0);
    }

    // ----- happens-before analyzer hooks (behind the `ARMED_HB` fast bit) -----
    //
    // Each hook takes the analyzer lock *around* the actual memory access, so
    // armed-mode accesses are linearized exactly where the analyzer observes
    // them. `bump` — which may block at a scheduler yield point or unwind at a
    // crash point — always runs before the lock is taken.

    #[cold]
    fn hb_read(&self, addr: PAddr) -> u64 {
        let word = self.word_at(addr);
        let mut hb = self.mem.hb.locked();
        let v = word.load();
        let flags = hb.note_read(self.arena_key(), addr, self.pid, self.step.get());
        drop(hb);
        StatCells::add(&self.stats.hb_flags, flags);
        v
    }

    #[cold]
    fn hb_write(&self, addr: PAddr, value: u64, release: bool) {
        let word = self.word_at(addr);
        let mut hb = self.mem.hb.locked();
        word.store(value);
        if self.mode == Mode::PrivateCache {
            word.persist_now();
        }
        let flags = hb.note_write(self.arena_key(), addr, self.pid, self.step.get(), release);
        drop(hb);
        StatCells::add(&self.stats.hb_flags, flags);
    }

    #[cold]
    fn hb_cas(&self, addr: PAddr, expected: u64, new: u64) -> Result<u64, u64> {
        let word = self.word_at(addr);
        let mut hb = self.mem.hb.locked();
        let result = word.compare_exchange(expected, new);
        if result.is_ok() && self.mode == Mode::PrivateCache {
            word.persist_now();
        }
        let flags = if result.is_ok() {
            hb.note_sync_write(self.arena_key(), addr, self.pid, self.step.get())
        } else {
            // A failed CAS still read the word: acquire its release clock (the
            // witnessed value flows into this thread's subsequent decisions).
            hb.note_sync_read(self.arena_key(), addr, self.pid, self.step.get())
        };
        drop(hb);
        StatCells::add(&self.stats.hb_flags, flags);
        result
    }

    #[cold]
    fn hb_fetch_add(&self, addr: PAddr, delta: u64) -> u64 {
        let word = self.word_at(addr);
        let mut hb = self.mem.hb.locked();
        let prev = word.fetch_add(delta);
        if self.mode == Mode::PrivateCache {
            word.persist_now();
        }
        let flags = hb.note_sync_write(self.arena_key(), addr, self.pid, self.step.get());
        drop(hb);
        StatCells::add(&self.stats.hb_flags, flags);
        prev
    }

    #[cold]
    fn hb_flush(&self, addr: PAddr, line: &[Word]) {
        let mut hb = self.mem.hb.locked();
        for word in line {
            word.persist_now();
        }
        hb.note_flush(self.arena_key(), addr, self.pid);
    }

    #[cold]
    fn hb_fence(&self) {
        self.mem.hb.locked().note_fence(self.pid);
    }

    // ----- shared-memory instructions ---------------------------------------

    /// Atomic read of a persistent word.
    #[inline]
    pub fn read(&self, addr: PAddr) -> u64 {
        self.bump(&self.stats.reads);
        let v = if self.hot_armed.get() & Self::ARMED_HB != 0 {
            self.hb_read(addr)
        } else {
            self.word_at(addr).load()
        };
        if self.audit_armed.get() {
            self.audit_read(addr);
        }
        if self.opts.izraelevitz {
            // The automatic construction flushes the line after every access.
            self.flush(addr);
        }
        v
    }

    /// Atomic read annotated as an acquire of `addr`'s release clock.
    ///
    /// Under the happens-before analyzer every plain read of a synchronization
    /// word (one that has been CASed, fetch-added or release-written) already
    /// acquires; this alias exists so that call sites relying on that edge are
    /// greppable. Identical to [`PThread::read`] in every other respect.
    #[inline]
    pub fn read_acquire(&self, addr: PAddr) -> u64 {
        self.read(addr)
    }

    /// Atomic read annotated as intentionally racy: exempt from happens-before
    /// race *and* cross-failure checks (the auditor and instruction counters
    /// still see it).
    ///
    /// For protocol-level scans whose tolerance of stale or torn context is
    /// argued separately — e.g. the helping path reading a peer's evidence
    /// words, where the algorithm re-validates via CAS before acting.
    #[inline]
    pub fn read_racy(&self, addr: PAddr) -> u64 {
        self.bump(&self.stats.reads);
        let v = self.word_at(addr).load();
        if self.audit_armed.get() {
            self.audit_read(addr);
        }
        if self.opts.izraelevitz {
            self.flush(addr);
        }
        v
    }

    /// Atomic write to a persistent word.
    ///
    /// In the private-cache model the store is immediately durable; in the
    /// shared-cache model it stays in the (volatile) cache until flushed.
    #[inline]
    pub fn write(&self, addr: PAddr, value: u64) {
        self.write_impl(addr, value, false);
    }

    /// Atomic write annotated as a release store: under the happens-before
    /// analyzer it transfers this thread's clock to `addr` like a successful
    /// CAS does (and marks the word as a synchronization word). Identical to
    /// [`PThread::write`] when the analyzer is disarmed.
    ///
    /// Use at plain-store publication sites whose readers are ordered by the
    /// store itself (announcement words, capsule control words).
    #[inline]
    pub fn write_release(&self, addr: PAddr, value: u64) {
        self.write_impl(addr, value, true);
    }

    #[inline]
    fn write_impl(&self, addr: PAddr, value: u64, release: bool) {
        self.bump(&self.stats.writes);
        if self.hot_armed.get() & Self::ARMED_HB != 0 {
            self.hb_write(addr, value, release);
        } else {
            let word = self.word_at(addr);
            word.store(value);
            if self.mode == Mode::PrivateCache {
                word.persist_now();
            }
        }
        self.coalesce_invalidate(addr);
        if self.audit_armed.get() {
            self.audit_store(addr);
        }
        if self.opts.izraelevitz {
            self.flush(addr);
            self.fence();
        }
    }

    /// Atomic compare-and-swap; returns `true` on success.
    #[inline]
    pub fn cas(&self, addr: PAddr, expected: u64, new: u64) -> bool {
        self.cas_full(addr, expected, new).is_ok()
    }

    /// Atomic compare-and-swap; returns `Ok(previous)` on success and
    /// `Err(witnessed)` on failure.
    #[inline]
    pub fn cas_full(&self, addr: PAddr, expected: u64, new: u64) -> Result<u64, u64> {
        self.bump(&self.stats.cas);
        let result = if self.hot_armed.get() & Self::ARMED_HB != 0 {
            self.hb_cas(addr, expected, new)
        } else {
            let word = self.word_at(addr);
            let result = word.compare_exchange(expected, new);
            if result.is_ok() && self.mode == Mode::PrivateCache {
                word.persist_now();
            }
            result
        };
        // Single, branchless accounting step for the attempt's outcome (the CAS
        // counter itself was bumped at the crash point above).
        StatCells::add(&self.stats.cas_success, result.is_ok() as u64);
        if result.is_ok() {
            self.coalesce_invalidate(addr);
        }
        if result.is_ok() && self.audit_armed.get() {
            // A successful CAS is a publication: everything this thread wrote
            // and has not flushed may now be reachable by other processes (and
            // by recovery), which is exactly what the auditor polices.
            self.audit_publish(addr);
        }
        if self.opts.izraelevitz {
            self.flush(addr);
            self.fence();
        }
        result
    }

    /// Atomic fetch-and-add (counted as a CAS-class update instruction). Not used
    /// by the paper's algorithms but handy for workload generators and tests.
    #[inline]
    pub fn fetch_add(&self, addr: PAddr, delta: u64) -> u64 {
        self.bump(&self.stats.cas);
        StatCells::add(&self.stats.cas_success, 1);
        let prev = if self.hot_armed.get() & Self::ARMED_HB != 0 {
            self.hb_fetch_add(addr, delta)
        } else {
            let word = self.word_at(addr);
            let prev = word.fetch_add(delta);
            if self.mode == Mode::PrivateCache {
                word.persist_now();
            }
            prev
        };
        self.coalesce_invalidate(addr);
        if self.audit_armed.get() {
            self.audit_publish(addr);
        }
        if self.opts.izraelevitz {
            self.flush(addr);
            self.fence();
        }
        prev
    }

    // ----- persistence instructions ------------------------------------------

    /// Flush the cache line containing `addr` (`clflushopt`). In the private-cache
    /// model this is a counted no-op (shared memory is already durable).
    ///
    /// Duplicate flushes — same line, already flushed by this thread since its
    /// last fence, and not re-dirtied since — are counted in
    /// [`Stats::duplicate_flushes`] and, when coalescing is enabled
    /// (`DF_COALESCE`, default on), elided. Elision is gated on the line being
    /// *clean* (every word's durable copy equals its cached copy), so an elided
    /// flush is a provable no-op: skipping it leaves the durable image — and
    /// therefore every crash schedule's outcome — bit-identical. A tracked line
    /// that a peer re-dirtied fails the clean check and is flushed in full.
    #[inline]
    pub fn flush(&self, addr: PAddr) {
        self.bump(&self.stats.flushes);
        if self.mode == Mode::SharedCache {
            // Resolve the segment once for the whole 8-word line (and usually for
            // free, out of the per-thread segment cache).
            let line = self.line_at(addr);
            let base = addr.line_base().0;
            let len = self.pending_len.get();
            let tracked = (0..len).any(|i| self.pending_lines[i].get() == base);
            if tracked && line.iter().all(Word::is_clean) {
                StatCells::add(&self.stats.duplicate_flushes, 1);
                if self.coalesce.get() && self.hot_armed.get() & Self::ARMED_HB == 0 {
                    // The first flush of this window already ran `audit_flush`
                    // for the line and nothing re-dirtied it, so the auditor's
                    // per-line state needs no update either. Armed hb runs
                    // never take this exit: a peer may have flushed the line
                    // clean, and the analyzer's flushed-pid mask must record
                    // *this* pid's flush too. The walk below is idempotent, so
                    // the durable image stays bit-identical either way.
                    return;
                }
            } else if !tracked && len < COALESCE_LINES {
                self.pending_lines[len].set(base);
                self.pending_len.set(len + 1);
            }
            if self.hot_armed.get() & Self::ARMED_HB != 0 {
                self.hb_flush(addr, line);
            } else {
                for word in line {
                    word.persist_now();
                }
            }
            if self.audit_armed.get() {
                self.audit_flush(addr);
            }
        }
    }

    /// Drop `addr`'s line from the coalescing window, if tracked: this thread
    /// re-dirtied the line, so its next flush must execute in full.
    #[inline]
    fn coalesce_invalidate(&self, addr: PAddr) {
        let len = self.pending_len.get();
        if len != 0 {
            self.coalesce_invalidate_slow(addr, len);
        }
    }

    #[cold]
    fn coalesce_invalidate_slow(&self, addr: PAddr, len: usize) {
        let base = addr.line_base().0;
        for i in 0..len {
            if self.pending_lines[i].get() == base {
                self.pending_lines[i].set(self.pending_lines[len - 1].get());
                self.pending_len.set(len - 1);
                return;
            }
        }
    }

    /// Store fence (`sfence`): orders previously issued flushes before subsequent
    /// stores. The simulator persists eagerly at the flush, so the fence only
    /// contributes to instruction counts (and issues a real compiler/CPU fence so
    /// the simulation does not reorder more than the modelled machine would).
    /// Closes the flush-coalescing window: lines flushed before the fence
    /// become dedup candidates again only after being re-flushed.
    #[inline]
    pub fn fence(&self) {
        self.bump(&self.stats.fences);
        self.pending_len.set(0);
        if self.hot_armed.get() & Self::ARMED_HB != 0 {
            self.hb_fence();
        }
        // SeqCst: the modelled sfence orders this thread's flushes before its
        // later stores; the strongest fence keeps the simulation's host-level
        // ordering at least as strict as the machine being modelled.
        std::sync::atomic::fence(Ordering::SeqCst);
    }

    /// Flush + fence: make `addr`'s line durable before continuing (the `psync`
    /// idiom used throughout the transformed algorithms).
    #[inline]
    pub fn persist(&self, addr: PAddr) {
        self.flush(addr);
        self.fence();
    }

    // ----- allocation ---------------------------------------------------------

    /// Allocate `nwords` consecutive persistent words (zero-initialised, and the
    /// zero state is already durable).
    pub fn alloc(&self, nwords: u64) -> PAddr {
        StatCells::add(&self.stats.words_allocated, nwords);
        self.mem.arena().alloc(nwords)
    }

    /// Allocate `nwords` consecutive persistent words starting at a cache-line
    /// boundary, so that the record's flush behaviour is independent of what was
    /// allocated before it (used for capsule frames).
    pub fn alloc_aligned(&self, nwords: u64) -> PAddr {
        StatCells::add(&self.stats.words_allocated, nwords);
        self.mem.arena().alloc_aligned(nwords)
    }

    // ----- convenience --------------------------------------------------------

    /// The `crashed()` system call for this process (resets the flag).
    pub fn take_crashed(&self) -> bool {
        self.mem.take_crashed(self.pid)
    }

    /// This process's persistent restart-pointer word.
    pub fn restart_word(&self) -> PAddr {
        self.mem.restart_word(self.pid)
    }
}

impl std::fmt::Debug for PThread<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PThread")
            .field("pid", &self.pid)
            .field("steps", &self.step.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::{catch_crash, install_quiet_crash_hook};

    #[test]
    fn read_write_cas_round_trip() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let a = t.alloc(1);
        t.write(a, 10);
        assert_eq!(t.read(a), 10);
        assert!(t.cas(a, 10, 11));
        assert!(!t.cas(a, 10, 12));
        assert_eq!(t.read(a), 11);
        assert_eq!(t.cas_full(a, 11, 13), Ok(11));
        assert_eq!(t.cas_full(a, 11, 14), Err(13));
    }

    #[test]
    fn stats_count_each_instruction_kind() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let a = t.alloc(1);
        t.write(a, 1);
        t.read(a);
        t.read(a);
        t.cas(a, 1, 2);
        t.flush(a);
        t.fence();
        let s = t.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 2);
        assert_eq!(s.cas, 1);
        assert_eq!(s.cas_success, 1);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.fences, 1);
        assert_eq!(s.words_allocated, 1);
        let taken = t.take_stats();
        assert_eq!(taken.reads, 2);
        assert_eq!(t.stats(), Stats::new());
    }

    #[test]
    fn shared_cache_crash_loses_unflushed_data() {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let a = {
            let t = mem.thread(0);
            let a = t.alloc(2);
            t.write(a, 1);
            t.persist(a);
            t.write(a.offset(1), 2); // same line, not flushed? (line flush covers it)
            let b = t.alloc(crate::LINE_WORDS); // separate line
            t.write(b, 99); // never flushed
            (a, b)
        };
        mem.crash_all();
        let t = mem.thread(0);
        assert_eq!(t.read(a.0), 1, "flushed data must survive");
        assert_eq!(t.read(a.1), 0, "unflushed independent line is lost");
        assert!(mem.take_crashed(0));
        assert!(!mem.take_crashed(0), "crashed flag resets on read");
    }

    #[test]
    fn private_cache_crash_preserves_all_shared_writes() {
        let mem = PMem::new(MemConfig::new(2).mode(Mode::PrivateCache));
        let t = mem.thread(0);
        let a = t.alloc(1);
        t.write(a, 42); // no flush needed in the private-cache model
        mem.crash_all();
        assert_eq!(mem.peek(a), 42);
        assert!(mem.take_crashed(0));
        assert!(mem.take_crashed(1));
    }

    #[test]
    fn per_thread_crash_sets_only_that_flag_and_keeps_memory() {
        let mem = PMem::new(MemConfig::new(2).mode(Mode::SharedCache));
        let t = mem.thread(0);
        let a = t.alloc(1);
        t.write(a, 5);
        mem.crash_thread(0);
        assert_eq!(mem.peek(a), 5, "independent process crash never rolls back memory");
        assert!(mem.peek_crashed(0));
        assert!(!mem.peek_crashed(1));
        assert!(mem.take_crashed(0));
    }

    #[test]
    fn izraelevitz_option_flushes_after_every_access() {
        let mem = PMem::with_threads(1);
        let t = mem.thread_with(0, ThreadOptions { izraelevitz: true });
        let a = t.alloc(1);
        t.write(a, 7);
        let after_write = t.stats();
        assert_eq!(after_write.flushes, 1);
        assert_eq!(after_write.fences, 1);
        t.read(a);
        let after_read = t.stats();
        assert_eq!(after_read.flushes, 2, "reads flush too under the construction");
        // And the data really is durable without any manual flush.
        mem.crash_all();
        assert_eq!(mem.peek(a), 7);
    }

    #[test]
    fn duplicate_flush_in_one_fence_window_is_counted_and_elided() {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let t = mem.thread(0);
        assert!(t.coalescing(), "coalescing defaults on in the shared-cache model");
        let a = t.alloc(1);
        t.write(a, 7);
        t.flush(a);
        t.flush(a); // same line, nothing re-dirtied: dedup-able
        t.flush(a.line_base()); // any word of the line dedups, not just `a`
        let s = t.stats();
        assert_eq!(s.flushes, 3, "elided flushes are still counted as issued");
        assert_eq!(s.duplicate_flushes, 2);
        mem.crash_all();
        assert_eq!(mem.peek(a), 7);
    }

    #[test]
    fn fence_closes_the_coalescing_window() {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let t = mem.thread(0);
        let a = t.alloc(1);
        t.write(a, 1);
        t.flush(a);
        t.fence();
        t.flush(a); // new window: a real (if no-op) flush, not a duplicate
        assert_eq!(t.stats().duplicate_flushes, 0);
        t.flush(a); // second flush in the new window: duplicate again
        assert_eq!(t.stats().duplicate_flushes, 1);
    }

    #[test]
    fn own_store_invalidates_the_tracked_line() {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let t = mem.thread(0);
        let a = t.alloc(2);
        t.write(a, 1);
        t.flush(a);
        t.write(a.offset(1), 2); // re-dirties the tracked line
        t.flush(a); // must be a full flush, or the second write is lost
        assert_eq!(t.stats().duplicate_flushes, 0);
        mem.crash_all();
        assert_eq!(mem.peek(a), 1);
        assert_eq!(mem.peek(a.offset(1)), 2);
        // Successful CAS and fetch-add invalidate the same way.
        let t = mem.thread(0);
        t.flush(a);
        assert!(t.cas(a, 1, 3));
        t.flush(a);
        t.fetch_add(a, 1);
        t.flush(a);
        assert_eq!(t.stats().duplicate_flushes, 0);
        mem.crash_all();
        assert_eq!(mem.peek(a), 4);
    }

    #[test]
    fn peer_dirtied_line_fails_the_clean_check_and_flushes_in_full() {
        let mem = PMem::new(MemConfig::new(2).mode(Mode::SharedCache));
        let t0 = mem.thread(0);
        let t1 = mem.thread(1);
        let a = t0.alloc(1);
        t0.write(a, 1);
        t0.flush(a);
        t1.write(a, 9); // peer re-dirties the line t0 has tracked
        t0.flush(a); // tracked but not clean: the persist walk must run
        assert_eq!(
            t0.stats().duplicate_flushes,
            0,
            "a flush that persists fresh peer data is not a duplicate"
        );
        mem.crash_all();
        assert_eq!(mem.peek(a), 9, "the helping flush made the peer's store durable");
    }

    #[test]
    fn disabled_coalescing_still_counts_duplicates() {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let t = mem.thread(0);
        t.set_coalesce(false);
        let a = t.alloc(1);
        t.write(a, 5);
        t.flush(a);
        t.flush(a);
        let s = t.stats();
        assert_eq!(s.flushes, 2);
        assert_eq!(s.duplicate_flushes, 1, "the 'before' mode measures the opportunity");
        mem.crash_all();
        assert_eq!(mem.peek(a), 5);
    }

    #[test]
    fn private_cache_mode_never_coalesces() {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::PrivateCache));
        let t = mem.thread(0);
        assert!(!t.coalescing());
        t.set_coalesce(true); // a no-op request in this model
        assert!(!t.coalescing());
        let a = t.alloc(1);
        t.write(a, 3);
        t.flush(a);
        t.flush(a);
        assert_eq!(t.stats().duplicate_flushes, 0, "PPM flushes are counted no-ops");
    }

    #[test]
    fn coalescing_window_is_bounded() {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let t = mem.thread(0);
        let base = t.alloc_aligned((2 * COALESCE_LINES as u64 + 1) * crate::LINE_WORDS);
        // Fill the window, then flush an untracked line twice: with the window
        // full it cannot be tracked, so its repeat is not counted — but it must
        // still persist correctly.
        for i in 0..COALESCE_LINES as u64 {
            let a = base.offset(i * crate::LINE_WORDS);
            t.write(a, i + 1);
            t.flush(a);
        }
        let extra = base.offset(COALESCE_LINES as u64 * crate::LINE_WORDS);
        t.write(extra, 77);
        t.flush(extra);
        t.flush(extra);
        assert_eq!(t.stats().duplicate_flushes, 0);
        mem.crash_all();
        assert_eq!(mem.peek(extra), 77);
    }

    #[test]
    fn crash_policy_interrupts_execution_and_is_catchable() {
        install_quiet_crash_hook();
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let a = t.alloc(1);
        t.set_crash_policy(CrashPolicy::Countdown(3));
        let result = catch_crash(|| {
            for i in 0..100 {
                t.write(a, i);
            }
            "finished"
        });
        let crashed = result.unwrap_err();
        assert_eq!(crashed.signal.pid, 0);
        // After the crash the policy is spent; execution can resume normally.
        assert_eq!(catch_crash(|| t.read(a)).unwrap(), t.read(a));
    }

    #[test]
    fn recovery_steps_are_counted_separately() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let a = t.alloc(1);
        t.read(a);
        t.begin_recovery();
        t.read(a);
        t.read(a);
        t.end_recovery();
        t.read(a);
        let s = t.stats();
        assert_eq!(s.reads, 4);
        assert_eq!(s.recovery_steps, 2);
    }

    #[test]
    fn restart_words_are_per_process_and_persistent() {
        let mem = PMem::with_threads(3);
        let t0 = mem.thread(0);
        let t2 = mem.thread(2);
        assert_ne!(mem.restart_word(0), mem.restart_word(2));
        t0.write(t0.restart_word(), 111);
        t0.persist(t0.restart_word());
        t2.write(t2.restart_word(), 222);
        t2.persist(t2.restart_word());
        mem.crash_all();
        assert_eq!(mem.peek(mem.restart_word(0)), 111);
        assert_eq!(mem.peek(mem.restart_word(2)), 222);
    }

    #[test]
    fn durable_read_sees_only_flushed_values() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let a = t.alloc(crate::LINE_WORDS);
        t.write(a, 9);
        assert_eq!(mem.durable_read(a), 0);
        t.persist(a);
        assert_eq!(mem.durable_read(a), 9);
    }

    #[test]
    #[should_panic]
    fn out_of_range_pid_panics() {
        let mem = PMem::with_threads(2);
        let _ = mem.thread(2);
    }

    #[test]
    fn stats_report_crash_points_windowed() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let a = t.alloc(1);
        t.write(a, 1);
        t.read(a);
        t.crash_point(); // explicit crash points count too
        assert_eq!(t.stats().crash_points, 3);
        assert_eq!(t.crash_points(), 3);
        let taken = t.take_stats();
        assert_eq!(taken.crash_points, 3);
        // The window resets; the lifetime counter (and AtStep semantics) do not.
        assert_eq!(t.stats().crash_points, 0);
        t.read(a);
        assert_eq!(t.stats().crash_points, 1);
        assert_eq!(t.crash_points(), 4);
    }

    #[test]
    fn crash_plan_schedule_fires_per_script_element() {
        use crate::crash::CrashPlan;
        install_quiet_crash_hook();
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let a = t.alloc(1);
        // Crash after 3 more crash points, then immediately at the next one
        // (the first crash point of the "recovery" code).
        t.set_crash_schedule(CrashPlan::new(vec![3, 0]));
        let first = catch_crash(|| {
            for i in 0..100 {
                t.write(a, i);
            }
        })
        .unwrap_err();
        assert_eq!(first.signal.pid, 0);
        // The very next instruction (nested schedule element) crashes again.
        let second = catch_crash(|| t.read(a)).unwrap_err();
        assert_eq!(second.signal.at_step, first.signal.at_step + 1);
        // Script exhausted: execution proceeds normally and the fast flag drops.
        assert_eq!(catch_crash(|| t.read(a)).unwrap(), t.read(a));
    }

    #[test]
    fn same_random_policy_on_two_pids_crashes_at_different_points() {
        install_quiet_crash_hook();
        let mem = PMem::with_threads(2);
        let steps_until_crash = |pid: usize| {
            let t = mem.thread(pid);
            let a = t.alloc(1);
            t.set_crash_policy(CrashPolicy::Random { prob: 0.01, seed: 1234 });
            let crashed = catch_crash(|| {
                loop {
                    t.read(a);
                }
            })
            .unwrap_err();
            crashed.signal.at_step
        };
        // Identical declarative policy, fresh handles, identical instruction
        // sequences — but pid-derived RNG streams, so the crash points differ.
        assert_ne!(steps_until_crash(0), steps_until_crash(1));
    }

    #[test]
    fn flush_auditor_flags_publish_before_flush_at_system_crash() {
        let mem = PMem::new(MemConfig::new(2).mode(Mode::SharedCache));
        mem.flush_auditor().arm();
        let t = mem.thread(0);
        let rec = t.alloc(LINE_WORDS); // the "descriptor"
        let ptr = t.alloc(LINE_WORDS); // the word that publishes it
        t.write(rec, 7); // descriptor contents, never flushed
        assert!(t.cas(ptr, 0, rec.to_raw())); // publish while unflushed
        t.persist(ptr); // the pointer itself is durable — the bug shape
        mem.crash_all();
        assert_eq!(mem.flush_auditor().flags(), 1, "{:?}", mem.flush_auditor().take_reports());
        let reports = mem.flush_auditor().take_reports();
        assert!(reports[0].contains("full-system crash"), "{reports:?}");
    }

    #[test]
    fn flush_auditor_flags_cross_thread_read_of_exposed_line() {
        let mem = PMem::new(MemConfig::new(2).mode(Mode::SharedCache));
        mem.flush_auditor().arm();
        let t0 = mem.thread(0);
        let t1 = mem.thread(1);
        let rec = t0.alloc(LINE_WORDS);
        let ptr = t0.alloc(LINE_WORDS);
        t0.write(rec, 7);
        assert!(t0.cas(ptr, 0, rec.to_raw()));
        assert_eq!(t0.read(rec), 7, "the publisher's own read is fine");
        assert_eq!(t0.stats().audit_flags, 0);
        let _ = t1.read(rec); // cross-thread read of published-unflushed state
        assert_eq!(t1.stats().audit_flags, 1);
        assert_eq!(mem.flush_auditor().flags(), 1);
    }

    #[test]
    fn flush_auditor_accepts_the_flush_before_publish_discipline() {
        let mem = PMem::new(MemConfig::new(2).mode(Mode::SharedCache));
        mem.flush_auditor().arm();
        let t0 = mem.thread(0);
        let t1 = mem.thread(1);
        let rec = t0.alloc(LINE_WORDS);
        let ptr = t0.alloc(LINE_WORDS);
        t0.write(rec, 7);
        t0.persist(rec); // discipline: durable before reachable
        assert!(t0.cas(ptr, 0, rec.to_raw()));
        t0.persist(ptr);
        let _ = t1.read(rec);
        mem.crash_all();
        assert_eq!(mem.flush_auditor().flags(), 0, "{:?}", mem.flush_auditor().take_reports());
    }

    #[test]
    fn flush_auditor_disarmed_or_refreshed_handles_track_arming() {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        // Start disarmed explicitly (DF_FLUSH_AUDIT=1 may have armed it at
        // construction; this test is about the per-handle fast flag).
        mem.flush_auditor().disarm();
        let t = mem.thread(0); // created before arming: fast flag is off
        t.refresh_flush_audit();
        let rec = t.alloc(LINE_WORDS);
        let ptr = t.alloc(LINE_WORDS);
        mem.flush_auditor().arm();
        t.write(rec, 1);
        assert!(t.cas(ptr, 0, 1));
        mem.crash_all();
        assert_eq!(mem.flush_auditor().flags(), 0, "stale handle must not audit");
        // After a refresh the same handle participates. (The earlier crash
        // rolled the unflushed CAS back, so `ptr` reads 0 again.)
        t.refresh_flush_audit();
        t.write(rec, 2);
        assert!(t.cas(ptr, 0, 2));
        mem.crash_all();
        assert_eq!(mem.flush_auditor().flags(), 1);
    }

    #[test]
    fn flush_auditor_is_inert_in_the_private_cache_model() {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::PrivateCache));
        mem.flush_auditor().arm();
        let t = mem.thread(0);
        let a = t.alloc(LINE_WORDS);
        let b = t.alloc(LINE_WORDS);
        t.write(a, 1);
        assert!(t.cas(b, 0, 1)); // every store is already durable: no exposure
        mem.crash_all();
        assert_eq!(mem.flush_auditor().flags(), 0);
    }

    #[test]
    fn flush_auditor_state_does_not_leak_across_arena_swaps() {
        // Same hazard class as the per-thread segment cache: auditor state
        // recorded against one arena must not fire (or be cleared) by events
        // on another after `swap_arena`.
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        mem.flush_auditor().arm();
        let t = mem.thread(0);
        let rec = t.alloc(LINE_WORDS);
        let ptr = t.alloc(LINE_WORDS);
        t.write(rec, 7);
        assert!(t.cas(ptr, 0, rec.to_raw())); // exposure in the first arena

        let donor = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let d = donor.thread(0);
        d.alloc(2 * LINE_WORDS);
        drop(d);
        let old = mem.swap_arena(donor.arena_handle());
        mem.crash_all();
        assert_eq!(
            mem.flush_auditor().flags(),
            0,
            "a crash of the swapped-in arena must not flag the retired arena's exposure: {:?}",
            mem.flush_auditor().take_reports()
        );

        // Swapping the original arena back in, the recorded exposure is still
        // live — and the next crash flags it.
        let _donor_arena = mem.swap_arena(old);
        mem.crash_all();
        assert_eq!(mem.flush_auditor().flags(), 1, "the retired arena's state must survive the round trip");
    }

    #[test]
    fn hb_flags_an_unsynchronized_cross_thread_race() {
        let mem = PMem::new(MemConfig::new(2).mode(Mode::SharedCache));
        mem.hb().arm();
        let t0 = mem.thread(0);
        let t1 = mem.thread(1);
        let a = t0.alloc(1);
        t0.write(a, 7); // plain store, no release annotation
        let _ = t1.read(a); // no happens-before path from the store
        assert_eq!(t1.stats().hb_flags, 1, "{:?}", mem.hb().take_reports());
        let reports = mem.hb().take_reports();
        assert!(reports[0].contains("data race"), "{reports:?}");
    }

    #[test]
    fn hb_accepts_a_cas_handoff_and_a_release_handoff() {
        let mem = PMem::new(MemConfig::new(3).mode(Mode::SharedCache));
        mem.hb().arm();
        let t0 = mem.thread(0);
        let t1 = mem.thread(1);
        let t2 = mem.thread(2);
        let data = t0.alloc(LINE_WORDS);
        let flag = t0.alloc(LINE_WORDS);
        // CAS publication: the successful CAS releases t0's clock; t1's plain
        // read of the CASed word acquires it, ordering the data read.
        t0.write(data, 7);
        assert!(t0.cas(flag, 0, 1));
        assert_eq!(t1.read(flag), 1);
        assert_eq!(t1.read(data), 7);
        // Release-store publication: same edge without a CAS.
        t1.write(data.offset(1), 8);
        t1.write_release(flag.offset(1), 1);
        assert_eq!(t2.read_acquire(flag.offset(1)), 1);
        assert_eq!(t2.read(data.offset(1)), 8);
        assert_eq!(mem.hb().flags(), 0, "{:?}", mem.hb().take_reports());
    }

    #[test]
    fn hb_flags_a_post_crash_read_of_an_unordered_publication() {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        mem.hb().arm();
        let t = mem.thread(0);
        let ann = t.alloc(LINE_WORDS);
        let x = t.alloc(LINE_WORDS);
        t.write(ann, 7); // never flushed before the publication below
        assert!(t.cas(x, 0, ann.to_raw()));
        t.persist(x); // the pointer is durably ordered; the payload is not
        mem.crash_all();
        let _ = t.read(ann); // recovery consumes the unordered word
        assert_eq!(t.stats().hb_flags, 1, "{:?}", mem.hb().take_reports());
        let reports = mem.hb().take_reports();
        assert!(reports[0].contains("cross-failure race"), "{reports:?}");
    }

    #[test]
    fn hb_accepts_flush_fence_before_publish_across_a_crash() {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        mem.hb().arm();
        let t = mem.thread(0);
        let ann = t.alloc(LINE_WORDS);
        let x = t.alloc(LINE_WORDS);
        t.write(ann, 7);
        t.persist(ann); // discipline: ordered durable before reachable
        assert!(t.cas(x, 0, ann.to_raw()));
        t.persist(x);
        mem.crash_all();
        assert_eq!(t.read(ann), 7);
        assert_eq!(t.read(x), ann.to_raw());
        assert_eq!(mem.hb().flags(), 0, "{:?}", mem.hb().take_reports());
    }

    #[test]
    fn hb_read_racy_is_exempt_from_both_flag_classes() {
        let mem = PMem::new(MemConfig::new(2).mode(Mode::SharedCache));
        mem.hb().arm();
        let t0 = mem.thread(0);
        let t1 = mem.thread(1);
        let a = t0.alloc(LINE_WORDS);
        let x = t0.alloc(LINE_WORDS);
        t0.write(a, 7);
        let _ = t1.read_racy(a); // annotated scan: no data-race flag
        assert!(t0.cas(x, 0, 1));
        t0.persist(x);
        mem.crash_all();
        let _ = t0.read_racy(a); // annotated recovery probe: no cross-failure flag
        assert_eq!(mem.hb().flags(), 0, "{:?}", mem.hb().take_reports());
    }

    #[test]
    fn hb_disarmed_or_refreshed_handles_track_arming() {
        let mem = PMem::new(MemConfig::new(2).mode(Mode::SharedCache));
        mem.hb().disarm(); // DF_HB=1 may have armed it at construction
        let t0 = mem.thread(0);
        let t1 = mem.thread(1);
        let a = t0.alloc(1);
        mem.hb().arm();
        t0.write(a, 7);
        let _ = t1.read(a);
        assert_eq!(mem.hb().flags(), 0, "stale handles must not analyze");
        t0.refresh_hb();
        t1.refresh_hb();
        // The refresh re-draws the creation edge, so only accesses *after* it
        // can race: a fresh unsynchronized pair still flags.
        t0.write(a, 8);
        let _ = t1.read(a);
        assert_eq!(mem.hb().flags(), 1, "{:?}", mem.hb().take_reports());
    }

    #[test]
    fn hb_is_inert_in_the_private_cache_model() {
        let mem = PMem::new(MemConfig::new(2).mode(Mode::PrivateCache));
        mem.hb().arm();
        let t0 = mem.thread(0);
        let t1 = mem.thread(1);
        let a = t0.alloc(1);
        t0.write(a, 7);
        let _ = t1.read(a);
        t0.refresh_hb(); // also inert: the fast bit stays off in this model
        t0.write(a, 8);
        let _ = t1.read(a);
        assert_eq!(mem.hb().flags(), 0);
    }

    #[test]
    fn seg_cache_does_not_survive_an_arena_swap() {
        // The multi-arena hazard: a handle's `(segment, slice)` cache resolved
        // against one arena must not be served after the machine swaps to
        // another — without the identity key, reads/writes would land in the
        // retired medium.
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let a = t.alloc(1);
        t.write(a, 7);
        assert_eq!(t.read(a), 7); // seg_cache now holds (old arena, segment 0)

        // A second medium with the identical layout but different contents.
        let donor = PMem::with_threads(1);
        let d = donor.thread(0);
        let a2 = d.alloc(1);
        assert_eq!(a2, a, "same allocation sequence must give the same layout");
        d.write(a2, 99);

        let old = mem.swap_arena(donor.arena_handle());
        assert_eq!(t.read(a), 99, "stale segment cache served the retired arena");
        t.write(a, 100);
        assert_eq!(donor.peek(a), 100, "write must land in the swapped-in arena");
        assert_eq!(old.word(a).load(), 7, "retired arena is untouched");
        assert!(t.stats().seg_resolves >= 2, "the swap must force a re-resolution");
    }

    #[test]
    fn machine_reattaches_over_a_surviving_arena() {
        // Shard-restart idiom: the machine (the "process") dies, the medium
        // survives, and a fresh machine boots over it, rediscovering the
        // restart-pointer array from the medium's system area.
        let arena;
        let a;
        {
            let mem = PMem::with_threads(2);
            let t = mem.thread(0);
            a = t.alloc(1);
            t.write(a, 41);
            t.persist(a);
            t.write(t.restart_word(), 0xCAFE);
            t.persist(t.restart_word());
            let v = mem.thread(1);
            v.write(v.restart_word(), 0xBEEF);
            // Never persisted: lost in the crash below.
            mem.crash_all();
            arena = mem.arena_handle();
        }
        let mem = PMem::with_arena(MemConfig::new(2), arena);
        let t = mem.thread(0);
        assert_eq!(t.read(a), 41, "persisted data must survive the incarnation change");
        assert_eq!(
            t.read(t.restart_word()),
            0xCAFE,
            "restart words must be rediscovered at the same addresses"
        );
        assert_eq!(mem.peek(mem.restart_word(1)), 0, "unflushed restart pointer rolled back");
    }

    #[test]
    #[should_panic(expected = "arena was laid out for")]
    fn reattaching_with_a_different_process_count_panics() {
        let first = PMem::with_threads(2);
        let arena = first.arena_handle();
        drop(first);
        let _ = PMem::with_arena(MemConfig::new(3), arena);
    }

    #[test]
    fn independent_machines_recover_independently() {
        // Two shards: a crash on one medium must not disturb the other.
        let shard_a = PMem::with_threads(1);
        let shard_b = PMem::with_threads(1);
        let ta = shard_a.thread(0);
        let tb = shard_b.thread(0);
        let wa = ta.alloc(1);
        let wb = tb.alloc(1);
        ta.write(wa, 1); // never flushed
        tb.write(wb, 2); // never flushed
        shard_a.crash_all();
        assert_eq!(shard_a.peek(wa), 0, "shard A lost its unflushed write");
        assert_eq!(shard_b.peek(wb), 2, "shard B must be untouched by A's crash");
        assert!(!shard_b.peek_crashed(0));
        assert!(shard_a.take_crashed(0));
    }

    #[test]
    fn concurrent_cas_from_many_threads_is_linearizable_counter() {
        let mem = PMem::with_threads(4);
        let a = mem.thread(0).alloc(1);
        std::thread::scope(|s| {
            for pid in 0..4 {
                let mem = &mem;
                s.spawn(move || {
                    let t = mem.thread(pid);
                    for _ in 0..10_000 {
                        loop {
                            let v = t.read(a);
                            if t.cas(a, v, v + 1) {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(mem.peek(a), 40_000);
    }
}
