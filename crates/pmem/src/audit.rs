//! The flush-order auditor: a machine-checked durability-ordering oracle.
//!
//! The `dfck` sweeper finds flush-discipline bugs by *enumeration*: replay a
//! workload once per crash point and look for a history the queue oracle rejects.
//! That catches the bug, but far from the faulting instruction — the violation
//! surfaces as a duplicate element many operations later. The auditor turns the
//! same bug class into one caught *deterministically at the instruction that
//! commits it*, following the ordering view of durable linearizability (D'Osualdo
//! et al., *The Path to Durable Linearizability*) and the detectability
//! discipline of Cho et al. (*Practical Detectability for Persistent Lock-Free
//! Data Structures*): state that a successful CAS makes reachable — or that a
//! recovery procedure will consult — must be durable *before* the CAS.
//!
//! ## What is tracked
//!
//! Per cache line, two facts (in a registry keyed by line base, populated only
//! while the auditor is armed):
//!
//! * **dirty-by(p)** — process `p` was the last to store to the line and the line
//!   has not been flushed since (its cached contents differ, or may differ, from
//!   its durable contents);
//! * **exposed-by(p)** — while the line was still dirty-by(p), process `p`
//!   performed a *successful CAS on some other line*. Under the publish-last
//!   flush discipline this must never happen: everything a process wrote before
//!   a publishing CAS must already be flushed (and fenced), because the CAS may
//!   make it reachable — and recovery may depend on it — the moment it lands.
//!
//! ## What is flagged
//!
//! 1. a **cross-thread read** of a line that is exposed and still unflushed —
//!    another process is consuming state whose durability was never ordered
//!    before its reachability (counted in the reading thread's
//!    [`Stats::audit_flags`](crate::Stats)); and
//! 2. a **full-system crash** ([`PMem::crash_all`](crate::PMem)) that rolls back
//!    a line still exposed-unflushed — the power failure just destroyed state a
//!    durable pointer may reference, which is exactly how the rcas descriptor
//!    flush gap manifested (DESIGN.md §7).
//!
//! A flush clears both facts for its line (this simulator persists eagerly at
//! the flush; the fence contributes ordering on real hardware but no extra state
//! transition here). Plain writes are *not* treated as publications: the frame
//! layer legitimately publishes boundary control words with plain stores after
//! flushing, and data-structure code constantly writes multi-line private
//! records, so a write-as-publish rule would drown the signal in false
//! positives. Plain-write publication ordering remains covered end-to-end by the
//! `dfck` system sweeps.
//!
//! ## Cost model
//!
//! The auditor sits behind a per-thread `Cell<bool>` mirrored from the machine's
//! armed flag — the same pattern as the `crash_armed` crash-point fast flag — so
//! a disarmed run pays one predictable never-taken branch per instruction and
//! the `instr_overhead` disarmed rows regress 0%. Armed, every instrumented
//! access takes a mutex on the registry; arm it in single-threaded sweeps and
//! correctness suites (`DF_FLUSH_AUDIT=1`), not in throughput runs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

/// Upper bound on retained human-readable reports (the flag *count* is exact).
const MAX_REPORTS: usize = 32;

/// Per-line audit state (see the module docs).
#[derive(Clone, Copy, Debug)]
struct LineState {
    /// Bitmask of processes that stored to the line since its last flush (bit
    /// `pid % 64`; with ≥ 64 simulated processes distinct pids can share a bit,
    /// which only ever *adds* exposure — the auditor stays sound, conservatively
    /// so). A mask rather than a single owner: announcement lines are
    /// cross-thread CAS targets by design (notify), and a second writer must
    /// not launder the first writer's unflushed data out of the audit.
    dirty_mask: u64,
    /// Set when some process in `dirty_mask` performed a successful CAS
    /// elsewhere while this line was still unflushed.
    exposed_by: Option<usize>,
}

/// The `dirty_mask` bit for a process.
fn pid_bit(pid: usize) -> u64 {
    1 << (pid % 64)
}

#[derive(Default)]
struct AuditInner {
    /// `(arena identity, line base)` → state. Only lines with unflushed stores
    /// appear; a flush removes the entry. Keyed by arena so that per-line state
    /// can never leak across [`PMem::swap_arena`](crate::PMem::swap_arena) /
    /// [`PMem::with_arena`](crate::PMem::with_arena) — the same hazard class as
    /// the `PThread` segment cache, which is likewise keyed by arena identity.
    lines: HashMap<(u64, u64), LineState>,
    /// Human-readable descriptions of the first [`MAX_REPORTS`] violations.
    reports: Vec<String>,
}

/// The per-machine flush-order auditor. Obtain it via
/// [`PMem::flush_auditor`](crate::PMem::flush_auditor); arm it before creating
/// thread handles (or call
/// [`PThread::refresh_flush_audit`](crate::PThread::refresh_flush_audit) on
/// existing ones).
pub struct FlushAuditor {
    armed: AtomicBool,
    /// Total violations flagged (cross-thread reads + lines lost at crash).
    flags: AtomicU64,
    inner: Mutex<AuditInner>,
}

impl FlushAuditor {
    pub(crate) fn new() -> FlushAuditor {
        FlushAuditor {
            armed: AtomicBool::new(false),
            flags: AtomicU64::new(0),
            inner: Mutex::new(AuditInner::default()),
        }
    }

    /// Arm the auditor. Existing thread handles keep their cached disarmed flag
    /// until [`PThread::refresh_flush_audit`](crate::PThread::refresh_flush_audit)
    /// is called; handles created afterwards pick the armed state up on creation.
    pub fn arm(&self) {
        // SeqCst: arming must be globally ordered against every hook's armed
        // check so no thread keeps auditing against a half-visible toggle.
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Disarm the auditor (state and past flags are retained).
    pub fn disarm(&self) {
        // SeqCst: pairs with `arm` — one total order over arm/disarm toggles.
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Whether the auditor is armed.
    pub fn is_armed(&self) -> bool {
        // SeqCst: reads the same total order the arm/disarm stores write.
        self.armed.load(Ordering::SeqCst)
    }

    /// Total violations flagged so far on this machine.
    pub fn flags(&self) -> u64 {
        // SeqCst: a reader that observed a violating replay finish must also
        // observe its flag — the count gates CI exit codes.
        self.flags.load(Ordering::SeqCst)
    }

    /// Drain the retained violation descriptions (at most [`MAX_REPORTS`] are
    /// kept; the [`flags`](FlushAuditor::flags) count is exact).
    pub fn take_reports(&self) -> Vec<String> {
        std::mem::take(&mut self.inner.lock().reports)
    }

    /// Forget the per-line state of one arena (used when the harness declares
    /// everything on that medium durable, e.g.
    /// [`PMem::persist_everything`](crate::PMem::persist_everything)). Other
    /// arenas' state — and past flags and reports — are retained.
    pub(crate) fn clear_state(&self, arena: u64) {
        self.inner.lock().lines.retain(|(a, _), _| *a != arena);
    }

    fn report(inner: &mut AuditInner, flags: &AtomicU64, msg: String) {
        // SeqCst: flag publication is ordered before any later `flags()`
        // read on any thread (the sweep harness reads from its parent).
        flags.fetch_add(1, Ordering::SeqCst);
        if inner.reports.len() < MAX_REPORTS {
            inner.reports.push(msg);
        }
    }

    /// A store by `pid` landed on the line at `line_base` of `arena`
    /// (shared-cache mode: the line is now dirty until flushed).
    pub(crate) fn note_store(&self, pid: usize, arena: u64, line_base: u64) {
        let mut inner = self.inner.lock();
        inner
            .lines
            .entry((arena, line_base))
            .or_insert(LineState {
                dirty_mask: 0,
                exposed_by: None,
            })
            .dirty_mask |= pid_bit(pid);
    }

    /// A successful CAS by `pid` landed on the line at `line_base`: every *other*
    /// line `pid` dirtied and has not flushed becomes exposed (published while
    /// unflushed), and the CAS's own line becomes dirty.
    pub(crate) fn note_publish(&self, pid: usize, arena: u64, line_base: u64) {
        let mut inner = self.inner.lock();
        let bit = pid_bit(pid);
        for (&(a, line), state) in inner.lines.iter_mut() {
            // Exposure is scoped to the publishing arena: a CAS on one medium
            // cannot make another medium's unflushed lines reachable.
            if a == arena
                && line != line_base
                && state.dirty_mask & bit != 0
                && state.exposed_by.is_none()
            {
                state.exposed_by = Some(pid);
            }
        }
        inner
            .lines
            .entry((arena, line_base))
            .or_insert(LineState {
                dirty_mask: 0,
                exposed_by: None,
            })
            .dirty_mask |= bit;
    }

    /// A read by `pid` of the line at `line_base`. Returns `true` (and records a
    /// report) if the line is exposed-unflushed by a *different* process — the
    /// reader is consuming state whose durability was never ordered before its
    /// reachability.
    pub(crate) fn note_read(&self, pid: usize, arena: u64, line_base: u64, step: u64) -> bool {
        let mut inner = self.inner.lock();
        let Some(state) = inner.lines.get(&(arena, line_base)) else {
            return false;
        };
        match state.exposed_by {
            Some(exposer) if exposer != pid => {
                let msg = format!(
                    "flush-audit: pid {pid} read line {line_base:#x} at step {step}, \
                     published unflushed by pid {exposer} (CAS before flush)"
                );
                Self::report(&mut inner, &self.flags, msg);
                true
            }
            _ => false,
        }
    }

    /// The line at `line_base` of `arena` was flushed: it is durable, clear its
    /// state.
    pub(crate) fn note_flush(&self, arena: u64, line_base: u64) {
        self.inner.lock().lines.remove(&(arena, line_base));
    }

    /// A full-system crash is rolling every unflushed line of `arena` back: any
    /// such line still exposed-unflushed is a violation (a durable pointer may
    /// reference the state the rollback just destroyed). That arena's per-line
    /// state is then cleared — after the rollback nothing on it is dirty; other
    /// arenas (other shards' media) are untouched. Returns the number of lines
    /// flagged.
    pub(crate) fn note_system_crash(&self, arena: u64) -> u64 {
        let mut inner = self.inner.lock();
        let lines = std::mem::take(&mut inner.lines);
        let mut flagged = 0;
        for ((a, line), state) in lines {
            if a != arena {
                inner.lines.insert((a, line), state);
                continue;
            }
            if let Some(exposer) = state.exposed_by {
                flagged += 1;
                let msg = format!(
                    "flush-audit: full-system crash rolled back line {line:#x} that pid \
                     {exposer} published (CAS) while still unflushed"
                );
                Self::report(&mut inner, &self.flags, msg);
            }
        }
        flagged
    }
}

impl std::fmt::Debug for FlushAuditor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlushAuditor")
            .field("armed", &self.is_armed())
            .field("flags", &self.flags())
            .field("tracked_lines", &self.inner.lock().lines.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Arena identity used by most tests (any fixed value works: the auditor
    /// only compares identities).
    const AR: u64 = 1;

    #[test]
    fn publish_then_cross_thread_read_is_flagged_once_per_read() {
        let a = FlushAuditor::new();
        a.arm();
        a.note_store(0, AR, 64);
        a.note_publish(0, AR, 128); // CAS on another line: 64 becomes exposed
        assert!(!a.note_read(0, AR, 64, 1), "the exposer's own reads are fine");
        assert!(a.note_read(1, AR, 64, 2), "cross-thread read must flag");
        assert!(a.note_read(2, AR, 64, 3));
        assert_eq!(a.flags(), 2);
        let reports = a.take_reports();
        assert_eq!(reports.len(), 2);
        assert!(reports[0].contains("published unflushed by pid 0"));
    }

    #[test]
    fn flush_before_publish_is_clean() {
        let a = FlushAuditor::new();
        a.arm();
        a.note_store(0, AR, 64);
        a.note_flush(AR, 64); // the discipline: flush before the CAS
        a.note_publish(0, AR, 128);
        assert!(!a.note_read(1, AR, 64, 1));
        assert_eq!(a.flags(), 0);
    }

    #[test]
    fn flush_after_exposure_clears_the_hazard() {
        let a = FlushAuditor::new();
        a.arm();
        a.note_store(0, AR, 64);
        a.note_publish(0, AR, 128);
        a.note_flush(AR, 64); // late, but durable before anyone read it
        assert!(!a.note_read(1, AR, 64, 1));
        assert_eq!(a.note_system_crash(AR), 0);
    }

    #[test]
    fn system_crash_flags_exposed_lines_and_clears_state() {
        let a = FlushAuditor::new();
        a.arm();
        a.note_store(0, AR, 64);
        a.note_store(0, AR, 192);
        a.note_publish(0, AR, 128);
        assert_eq!(a.note_system_crash(AR), 2);
        assert_eq!(a.flags(), 2);
        // Rolled back: nothing dirty any more.
        assert!(!a.note_read(1, AR, 64, 9));
        assert_eq!(a.note_system_crash(AR), 0);
    }

    #[test]
    fn second_writer_does_not_launder_the_first_writers_dirt() {
        // Pid 0 stores to a line; pid 1 then CASes *that same line* (the notify
        // pattern on announcement lines). Pid 0's later publish elsewhere must
        // still expose the line — a single-owner tracker would have handed the
        // line to pid 1 and missed it.
        let a = FlushAuditor::new();
        a.arm();
        a.note_store(0, AR, 64);
        a.note_publish(1, AR, 64); // pid 1's CAS lands on the dirty line itself
        a.note_publish(0, AR, 128); // pid 0 publishes elsewhere: 64 must expose
        assert!(a.note_read(2, AR, 64, 1), "pid 0's unflushed data was published");
        assert_eq!(a.note_system_crash(AR), 1);
    }

    #[test]
    fn unexposed_dirty_lines_do_not_flag_at_crash() {
        // Private scratch that was never followed by a CAS is allowed to be lost.
        let a = FlushAuditor::new();
        a.arm();
        a.note_store(0, AR, 64);
        assert_eq!(a.note_system_crash(AR), 0);
        assert_eq!(a.flags(), 0);
    }

    #[test]
    fn the_cas_target_line_itself_is_not_exposed() {
        // The published word's own durability is the caller's post-CAS persist
        // responsibility; a crash before it simply un-publishes.
        let a = FlushAuditor::new();
        a.arm();
        a.note_publish(0, AR, 128);
        assert!(!a.note_read(1, AR, 128, 1));
        assert_eq!(a.note_system_crash(AR), 0);
    }

    #[test]
    fn state_is_scoped_to_the_arena() {
        // The swap-arena leak shape: the same line base exists on two media.
        // Dirt on one arena must not flag reads — or crashes — on the other,
        // and exposure must not cross arenas via a publish.
        let a = FlushAuditor::new();
        a.arm();
        a.note_store(0, AR, 64);
        a.note_publish(0, AR + 1, 128); // publish on arena 2: no exposure on 1
        assert!(!a.note_read(1, AR, 64, 1));
        a.note_publish(0, AR, 128); // now 64 on arena 1 is exposed
        assert!(!a.note_read(1, AR + 1, 64, 2), "same line base, other arena");
        assert_eq!(a.note_system_crash(AR + 1), 0, "other arena's crash is clean");
        assert!(a.note_read(1, AR, 64, 3), "arena 1's exposure must survive");
        assert_eq!(a.note_system_crash(AR), 1);
    }

    #[test]
    fn clear_state_only_clears_the_given_arena() {
        let a = FlushAuditor::new();
        a.arm();
        a.note_store(0, AR, 64);
        a.note_store(0, AR + 1, 64);
        a.note_publish(0, AR, 128);
        a.note_publish(0, AR + 1, 128);
        a.clear_state(AR + 1);
        assert!(!a.note_read(1, AR + 1, 64, 1), "cleared arena is clean");
        assert!(a.note_read(1, AR, 64, 2), "other arena keeps its exposure");
    }
}
