//! Per-thread instruction and persistence statistics.
//!
//! The paper's delay definitions (§3) count *steps*: shared-memory instructions,
//! local instructions, flushes and fences. The benchmark harness uses these counters
//! to reproduce the paper's flush-count discussion (fewer flushes ⇒ higher
//! throughput) and the recovery-delay comparison against the LogQueue.
//!
//! Counters live in the per-thread [`PThread`](crate::PThread) handle (they are plain
//! `u64`s behind a `Cell`, so counting costs a couple of adds per simulated
//! instruction and the overhead is identical for every algorithm under test).

use std::cell::Cell;

/// The live, per-thread counter block: one [`Cell<u64>`] per [`Stats`] field.
///
/// This is the accounting structure on the instruction hot path. Each counted
/// instruction is a single non-atomic load/add/store on the one counter it
/// touches — no `RefCell` borrow-flag bookkeeping, no branch on a shared
/// discriminant. [`PThread`](crate::PThread) owns one and snapshots it into a
/// plain [`Stats`] on demand.
#[derive(Debug, Default)]
pub(crate) struct StatCells {
    pub(crate) reads: Cell<u64>,
    pub(crate) writes: Cell<u64>,
    pub(crate) cas: Cell<u64>,
    pub(crate) cas_success: Cell<u64>,
    pub(crate) flushes: Cell<u64>,
    pub(crate) duplicate_flushes: Cell<u64>,
    pub(crate) fences: Cell<u64>,
    pub(crate) words_allocated: Cell<u64>,
    pub(crate) recovery_steps: Cell<u64>,
    pub(crate) crashes: Cell<u64>,
    pub(crate) audit_flags: Cell<u64>,
    pub(crate) hb_flags: Cell<u64>,
    pub(crate) seg_resolves: Cell<u64>,
}

impl StatCells {
    /// Add `n` to a counter cell (the per-instruction accounting step).
    #[inline]
    pub(crate) fn add(cell: &Cell<u64>, n: u64) {
        cell.set(cell.get() + n);
    }

    /// Copy the live counters into an immutable snapshot. The `crash_points`
    /// field is not a cell here — `PThread` fills it in from its step counter.
    pub(crate) fn snapshot(&self) -> Stats {
        Stats {
            crash_points: 0,
            reads: self.reads.get(),
            writes: self.writes.get(),
            cas: self.cas.get(),
            cas_success: self.cas_success.get(),
            flushes: self.flushes.get(),
            duplicate_flushes: self.duplicate_flushes.get(),
            fences: self.fences.get(),
            words_allocated: self.words_allocated.get(),
            recovery_steps: self.recovery_steps.get(),
            crashes: self.crashes.get(),
            audit_flags: self.audit_flags.get(),
            hb_flags: self.hb_flags.get(),
            seg_resolves: self.seg_resolves.get(),
        }
    }

    /// Snapshot and zero the live counters.
    pub(crate) fn take(&self) -> Stats {
        let snap = self.snapshot();
        self.reads.set(0);
        self.writes.set(0);
        self.cas.set(0);
        self.cas_success.set(0);
        self.flushes.set(0);
        self.duplicate_flushes.set(0);
        self.fences.set(0);
        self.words_allocated.set(0);
        self.recovery_steps.set(0);
        self.crashes.set(0);
        self.audit_flags.set(0);
        self.hb_flags.set(0);
        self.seg_resolves.set(0);
        snap
    }
}

/// A snapshot of the instructions a simulated process has executed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Crash points passed in this window: one per counted instruction plus one
    /// per explicit [`PThread::crash_point`](crate::PThread::crash_point) call.
    /// Sourced from the thread's step counter at snapshot time (no extra work on
    /// the instruction hot path); the `dfck` sweeper enumerates `0..crash_points`.
    pub crash_points: u64,
    /// Shared-memory reads.
    pub reads: u64,
    /// Shared-memory writes.
    pub writes: u64,
    /// Shared-memory compare-and-swap attempts (successful or not).
    pub cas: u64,
    /// Successful compare-and-swaps.
    pub cas_success: u64,
    /// Cache-line flush instructions (`clflushopt` equivalents).
    pub flushes: u64,
    /// Flushes (already counted in `flushes`) whose target cache line was
    /// already flushed since the thread's last fence — the dedup-able
    /// population that per-line flush coalescing can elide. When coalescing is
    /// enabled (`DF_COALESCE=1`, the default) these flushes skip the persist
    /// work; when disabled they execute in full but are still counted, so the
    /// same field measures the opportunity ("before") and the win ("after").
    pub duplicate_flushes: u64,
    /// Store fences (`sfence` equivalents).
    pub fences: u64,
    /// Persistent-memory words allocated by this thread.
    pub words_allocated: u64,
    /// Steps executed while recovering from a crash (between the moment the crashed
    /// flag is observed and the moment normal execution resumes).
    pub recovery_steps: u64,
    /// Number of simulated crashes this thread has experienced.
    pub crashes: u64,
    /// Flush-order violations flagged against this thread's reads by the
    /// [`FlushAuditor`](crate::FlushAuditor) (zero unless the auditor is armed;
    /// crash-time flags are machine-level and counted on the auditor itself).
    pub audit_flags: u64,
    /// Happens-before violations flagged against this thread's accesses by the
    /// [`HbAnalyzer`](crate::HbAnalyzer) — data races and cross-failure races,
    /// attributed to the later (observing) access. Zero unless `DF_HB` armed
    /// the analyzer; machine-level totals live on the analyzer itself.
    pub hb_flags: u64,
    /// Slow-path segment-table resolutions: per-thread segment-cache misses,
    /// including every identity-key invalidation after an arena swap. Stays
    /// tiny on single-arena runs (one per segment touched); a multi-arena
    /// harness can use it to confirm the cache re-keys instead of thrashing.
    pub seg_resolves: u64,
}

impl Stats {
    /// A zeroed statistics block.
    pub const fn new() -> Stats {
        Stats {
            crash_points: 0,
            reads: 0,
            writes: 0,
            cas: 0,
            cas_success: 0,
            flushes: 0,
            duplicate_flushes: 0,
            fences: 0,
            words_allocated: 0,
            recovery_steps: 0,
            crashes: 0,
            audit_flags: 0,
            hb_flags: 0,
            seg_resolves: 0,
        }
    }

    /// Total number of shared-memory instructions (reads + writes + CAS attempts).
    pub fn shared_ops(&self) -> u64 {
        self.reads + self.writes + self.cas
    }

    /// Total number of persistence instructions (flushes + fences).
    pub fn persistence_ops(&self) -> u64 {
        self.flushes + self.fences
    }

    /// Total simulated steps: shared memory plus persistence instructions.
    pub fn steps(&self) -> u64 {
        self.shared_ops() + self.persistence_ops()
    }

    /// Total counted instructions: every category the per-instruction accounting
    /// path increments (shared-memory plus persistence instructions — the same
    /// quantity as [`steps`](Stats::steps), named for the instruction-overhead
    /// microbench which asserts its loops were fully counted).
    pub fn total_instructions(&self) -> u64 {
        self.steps()
    }

    /// Element-wise sum of two snapshots.
    pub fn merge(&self, other: &Stats) -> Stats {
        Stats {
            crash_points: self.crash_points + other.crash_points,
            reads: self.reads + other.reads,
            writes: self.writes + other.writes,
            cas: self.cas + other.cas,
            cas_success: self.cas_success + other.cas_success,
            flushes: self.flushes + other.flushes,
            duplicate_flushes: self.duplicate_flushes + other.duplicate_flushes,
            fences: self.fences + other.fences,
            words_allocated: self.words_allocated + other.words_allocated,
            recovery_steps: self.recovery_steps + other.recovery_steps,
            crashes: self.crashes + other.crashes,
            audit_flags: self.audit_flags + other.audit_flags,
            hb_flags: self.hb_flags + other.hb_flags,
            seg_resolves: self.seg_resolves + other.seg_resolves,
        }
    }

    /// Element-wise difference (`self - earlier`), useful for measuring a window.
    ///
    /// Saturates at zero so that a window around a `take_stats` reset does not wrap.
    pub fn since(&self, earlier: &Stats) -> Stats {
        Stats {
            crash_points: self.crash_points.saturating_sub(earlier.crash_points),
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            cas: self.cas.saturating_sub(earlier.cas),
            cas_success: self.cas_success.saturating_sub(earlier.cas_success),
            flushes: self.flushes.saturating_sub(earlier.flushes),
            duplicate_flushes: self
                .duplicate_flushes
                .saturating_sub(earlier.duplicate_flushes),
            fences: self.fences.saturating_sub(earlier.fences),
            words_allocated: self.words_allocated.saturating_sub(earlier.words_allocated),
            recovery_steps: self.recovery_steps.saturating_sub(earlier.recovery_steps),
            crashes: self.crashes.saturating_sub(earlier.crashes),
            audit_flags: self.audit_flags.saturating_sub(earlier.audit_flags),
            hb_flags: self.hb_flags.saturating_sub(earlier.hb_flags),
            seg_resolves: self.seg_resolves.saturating_sub(earlier.seg_resolves),
        }
    }

    /// Flushes per high-level operation, given an operation count.
    pub fn flushes_per_op(&self, ops: u64) -> f64 {
        if ops == 0 {
            0.0
        } else {
            self.flushes as f64 / ops as f64
        }
    }

    /// Fences per high-level operation, given an operation count.
    pub fn fences_per_op(&self, ops: u64) -> f64 {
        if ops == 0 {
            0.0
        } else {
            self.fences as f64 / ops as f64
        }
    }

    /// Dedup-able (same line, same fence window) flushes per high-level
    /// operation, given an operation count.
    pub fn duplicate_flushes_per_op(&self, ops: u64) -> f64 {
        if ops == 0 {
            0.0
        } else {
            self.duplicate_flushes as f64 / ops as f64
        }
    }
}

impl std::ops::Add for Stats {
    type Output = Stats;
    fn add(self, rhs: Stats) -> Stats {
        self.merge(&rhs)
    }
}

impl std::iter::Sum for Stats {
    fn sum<I: Iterator<Item = Stats>>(iter: I) -> Stats {
        iter.fold(Stats::new(), |a, b| a.merge(&b))
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "reads={} writes={} cas={} (ok={}) flushes={} (dup={}) fences={} alloc_words={} recovery_steps={} crashes={} crash_points={} audit_flags={} hb_flags={} seg_resolves={}",
            self.reads,
            self.writes,
            self.cas,
            self.cas_success,
            self.flushes,
            self.duplicate_flushes,
            self.fences,
            self.words_allocated,
            self.recovery_steps,
            self.crashes,
            self.crash_points,
            self.audit_flags,
            self.hb_flags,
            self.seg_resolves
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Stats {
        Stats {
            crash_points: 24,
            reads: 10,
            writes: 5,
            cas: 3,
            cas_success: 2,
            flushes: 4,
            duplicate_flushes: 3,
            fences: 2,
            words_allocated: 7,
            recovery_steps: 1,
            crashes: 1,
            audit_flags: 2,
            hb_flags: 1,
            seg_resolves: 3,
        }
    }

    #[test]
    fn totals() {
        let s = sample();
        assert_eq!(s.shared_ops(), 18);
        assert_eq!(s.persistence_ops(), 6);
        assert_eq!(s.steps(), 24);
    }

    #[test]
    fn merge_adds_fields() {
        let s = sample().merge(&sample());
        assert_eq!(s.reads, 20);
        assert_eq!(s.flushes, 8);
        assert_eq!(s.duplicate_flushes, 6);
        assert_eq!(s.crashes, 2);
        assert_eq!(s.crash_points, 48);
    }

    #[test]
    fn since_subtracts_and_saturates() {
        let a = sample();
        let mut b = sample();
        b.reads = 25;
        let d = b.since(&a);
        assert_eq!(d.reads, 15);
        assert_eq!(d.writes, 0);
        // Saturation: subtracting a larger snapshot yields zero, not a wrap.
        let d2 = a.since(&b);
        assert_eq!(d2.reads, 0);
    }

    #[test]
    fn per_op_rates() {
        let s = sample();
        assert!((s.flushes_per_op(2) - 2.0).abs() < 1e-9);
        assert_eq!(s.flushes_per_op(0), 0.0);
        assert!((s.fences_per_op(4) - 0.5).abs() < 1e-9);
        assert!((s.duplicate_flushes_per_op(2) - 1.5).abs() < 1e-9);
        assert_eq!(s.duplicate_flushes_per_op(0), 0.0);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Stats = vec![sample(), sample(), Stats::new()].into_iter().sum();
        assert_eq!(total.reads, 20);
        assert_eq!(total.fences, 4);
    }

    #[test]
    fn display_contains_counters() {
        let text = sample().to_string();
        assert!(text.contains("flushes=4"));
        assert!(text.contains("(dup=3)"));
        assert!(text.contains("crashes=1"));
        assert!(text.contains("crash_points=24"));
        assert!(text.contains("audit_flags=2"));
        assert!(text.contains("hb_flags=1"));
    }
}
