//! Thin typed wrappers over raw persistent words.
//!
//! Algorithms in this workspace mostly work with raw [`PAddr`]s, mirroring the
//! word-level model of the paper. For examples and user code, [`PCell`] gives a
//! slightly friendlier single-word cell, and [`PField`] names word offsets inside
//! multi-word persistent records (e.g. queue nodes).

use crate::addr::PAddr;
use crate::mem::PThread;

/// A single persistent word with a typed-ish API. The cell itself is just an
/// address; all accesses go through a [`PThread`] so they are counted and can
/// crash like any other simulated instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PCell {
    addr: PAddr,
}

impl PCell {
    /// Allocate a fresh persistent cell initialised (durably) to zero.
    pub fn alloc(thread: &PThread<'_>) -> PCell {
        PCell {
            addr: thread.alloc(1),
        }
    }

    /// Wrap an existing word address.
    pub fn at(addr: PAddr) -> PCell {
        PCell { addr }
    }

    /// The underlying address.
    pub fn addr(&self) -> PAddr {
        self.addr
    }

    /// Atomic read.
    pub fn load(&self, thread: &PThread<'_>) -> u64 {
        thread.read(self.addr)
    }

    /// Atomic write.
    pub fn store(&self, thread: &PThread<'_>, value: u64) {
        thread.write(self.addr, value)
    }

    /// Compare-and-swap; `true` on success.
    pub fn cas(&self, thread: &PThread<'_>, expected: u64, new: u64) -> bool {
        thread.cas(self.addr, expected, new)
    }

    /// Flush + fence this cell's line.
    pub fn persist(&self, thread: &PThread<'_>) {
        thread.persist(self.addr)
    }
}

/// A named word offset inside a multi-word persistent record.
///
/// ```
/// use pmem::{PMem, PField};
///
/// // A two-word record: { value, next }.
/// const VALUE: PField = PField::new(0);
/// const NEXT: PField = PField::new(1);
///
/// let mem = PMem::with_threads(1);
/// let t = mem.thread(0);
/// let node = t.alloc(2);
/// VALUE.write(&t, node, 7);
/// NEXT.write(&t, node, 0);
/// assert_eq!(VALUE.read(&t, node), 7);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PField {
    offset: u64,
}

impl PField {
    /// A field at the given word offset.
    pub const fn new(offset: u64) -> PField {
        PField { offset }
    }

    /// The address of this field within the record at `base`.
    pub fn addr(&self, base: PAddr) -> PAddr {
        base.offset(self.offset)
    }

    /// Read this field of the record at `base`.
    pub fn read(&self, thread: &PThread<'_>, base: PAddr) -> u64 {
        thread.read(self.addr(base))
    }

    /// Write this field of the record at `base`.
    pub fn write(&self, thread: &PThread<'_>, base: PAddr, value: u64) {
        thread.write(self.addr(base), value)
    }

    /// CAS this field of the record at `base`.
    pub fn cas(&self, thread: &PThread<'_>, base: PAddr, expected: u64, new: u64) -> bool {
        thread.cas(self.addr(base), expected, new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::PMem;

    #[test]
    fn pcell_basic_ops() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let c = PCell::alloc(&t);
        assert_eq!(c.load(&t), 0);
        c.store(&t, 3);
        assert!(c.cas(&t, 3, 4));
        assert!(!c.cas(&t, 3, 5));
        assert_eq!(c.load(&t), 4);
        c.persist(&t);
        mem.crash_all();
        assert_eq!(mem.peek(c.addr()), 4);
    }

    #[test]
    fn pcell_at_wraps_existing_address() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let addr = t.alloc(1);
        t.write(addr, 9);
        let c = PCell::at(addr);
        assert_eq!(c.load(&t), 9);
    }

    #[test]
    fn pfield_addresses_record_fields() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        const A: PField = PField::new(0);
        const B: PField = PField::new(1);
        let rec = t.alloc(2);
        A.write(&t, rec, 10);
        B.write(&t, rec, 20);
        assert_eq!(A.read(&t, rec), 10);
        assert_eq!(B.read(&t, rec), 20);
        assert!(B.cas(&t, rec, 20, 21));
        assert_eq!(t.read(rec.offset(1)), 21);
        assert_eq!(A.addr(rec), rec);
        assert_eq!(B.addr(rec), rec.offset(1));
    }
}
