//! Cache models.
//!
//! §2.1 and §9 of the paper distinguish two machine models that differ only in when
//! a store to shared memory becomes persistent:
//!
//! * **Private-cache model** (the theoretical PPM model): shared memory *is* the
//!   persistent memory, so every store is immediately durable; only process-local
//!   volatile state is lost on a crash. Flush/fence instructions are unnecessary.
//! * **Shared-cache model** (closer to real hardware): stores land in a volatile
//!   cache; the program must issue explicit flush and fence instructions (or rely on
//!   the Izraelevitz construction that adds them automatically) to make data durable.
//!   A crash loses everything that has not been flushed.

/// Which cache model the simulated machine uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Mode {
    /// Every shared-memory store is immediately persistent (the PPM model of §2.1).
    PrivateCache,
    /// Stores are volatile until flushed; a crash rolls unflushed lines back
    /// (the shared-cache variant of §9, used for all the paper's experiments).
    #[default]
    SharedCache,
}

impl Mode {
    /// Whether stores require an explicit flush to become durable in this mode.
    pub fn needs_flushes(self) -> bool {
        matches!(self, Mode::SharedCache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_shared_cache() {
        assert_eq!(Mode::default(), Mode::SharedCache);
    }

    #[test]
    fn needs_flushes() {
        assert!(Mode::SharedCache.needs_flushes());
        assert!(!Mode::PrivateCache.needs_flushes());
    }
}
