//! Crash injection.
//!
//! The PPM model lets any process crash at any instruction, losing its volatile
//! state. The simulator reproduces this by having every instrumented persistent
//! memory access consult the thread's [`CrashPolicy`]; when the policy fires, the
//! access panics with a [`CrashSignal`] payload. Unwinding destroys the thread's
//! Rust locals — exactly the volatile state the model says is lost — and the capsule
//! runtime (or [`catch_crash`]) catches the signal and restarts execution from the
//! process's restart pointer.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::panic::{self, AssertUnwindSafe};

/// The panic payload used to simulate a crash. Carried through `panic_any` and
/// recognised by [`catch_crash`] / the capsule runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSignal {
    /// The process id of the crashing thread.
    pub pid: usize,
    /// The value of the thread's step counter when the crash fired.
    pub at_step: u64,
}

/// Marker returned by [`catch_crash`] when the closure was interrupted by a
/// simulated crash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Crashed {
    /// The signal that interrupted the closure.
    pub signal: CrashSignal,
}

/// Decides when a simulated crash fires on a thread.
///
/// Policies are evaluated at every *crash point*: each instrumented persistent
/// memory access plus every explicit [`PThread::crash_point`](crate::PThread::crash_point)
/// call. The policy is consulted with the thread's monotonically increasing step
/// counter.
#[derive(Clone, Debug, Default)]
pub enum CrashPolicy {
    /// Never crash (the default; used for throughput benchmarks).
    #[default]
    Never,
    /// Crash exactly once, when the step counter reaches the given absolute value.
    AtStep(u64),
    /// Crash exactly once, after the given number of additional crash points.
    Countdown(u64),
    /// Crash at each crash point independently with probability `prob`
    /// (seeded for reproducibility). Fires repeatedly — each catch re-arms it.
    Random {
        /// Per-crash-point crash probability in `[0, 1]`.
        prob: f64,
        /// RNG seed, so torture tests are reproducible.
        seed: u64,
    },
}

/// Internal, armed state of a crash policy (holds the RNG for `Random`).
#[derive(Debug)]
pub(crate) enum ArmedPolicy {
    Never,
    AtStep(u64),
    Countdown(u64),
    Random { prob: f64, rng: SmallRng },
    /// A one-shot policy that already fired.
    Spent,
}

impl ArmedPolicy {
    pub(crate) fn arm(policy: CrashPolicy) -> ArmedPolicy {
        match policy {
            CrashPolicy::Never => ArmedPolicy::Never,
            CrashPolicy::AtStep(s) => ArmedPolicy::AtStep(s),
            CrashPolicy::Countdown(n) => ArmedPolicy::Countdown(n),
            CrashPolicy::Random { prob, seed } => ArmedPolicy::Random {
                prob,
                rng: SmallRng::seed_from_u64(seed),
            },
        }
    }

    /// Returns `true` if a crash should fire at this step.
    #[inline]
    pub(crate) fn should_crash(&mut self, step: u64) -> bool {
        match self {
            ArmedPolicy::Never | ArmedPolicy::Spent => false,
            ArmedPolicy::AtStep(s) => {
                if step >= *s {
                    *self = ArmedPolicy::Spent;
                    true
                } else {
                    false
                }
            }
            ArmedPolicy::Countdown(n) => {
                if *n == 0 {
                    *self = ArmedPolicy::Spent;
                    true
                } else {
                    *n -= 1;
                    false
                }
            }
            ArmedPolicy::Random { prob, rng } => rng.gen_bool(*prob),
        }
    }

    /// Whether the policy can still fire. `PThread` mirrors this into its
    /// `crash_armed` fast flag so the per-instruction crash point is a single
    /// branch when nothing can crash (every throughput run, and any one-shot
    /// policy after it has spent itself).
    pub(crate) fn is_armed(&self) -> bool {
        !matches!(self, ArmedPolicy::Never | ArmedPolicy::Spent)
    }
}

/// Raise a simulated crash on the current thread by panicking with a
/// [`CrashSignal`] payload. Normally called from inside `PThread`, but exposed so
/// tests can crash "between" instructions as well.
#[cold]
pub fn raise_crash(pid: usize, at_step: u64) -> ! {
    panic::panic_any(CrashSignal { pid, at_step })
}

/// Returns the crash signal if the panic payload is a simulated crash.
pub fn crash_signal_of(payload: &(dyn std::any::Any + Send)) -> Option<CrashSignal> {
    payload.downcast_ref::<CrashSignal>().copied()
}

/// Run a closure, converting a simulated crash into `Err(Crashed)`.
///
/// Real panics (assertion failures, bugs) are propagated unchanged so that test
/// failures are never silently swallowed by the crash machinery.
pub fn catch_crash<R>(f: impl FnOnce() -> R) -> Result<R, Crashed> {
    match panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => match crash_signal_of(payload.as_ref()) {
            Some(signal) => Err(Crashed { signal }),
            None => panic::resume_unwind(payload),
        },
    }
}

/// Install a panic hook that suppresses the default "thread panicked" message for
/// simulated crashes while delegating every other panic to the previous hook.
///
/// Call once at the start of crash-torture tests or examples to keep their output
/// readable; calling it multiple times is harmless.
pub fn install_quiet_crash_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashSignal>().is_some() {
                // Simulated crash: stay quiet, the harness will recover.
                return;
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_policy_never_fires() {
        let mut p = ArmedPolicy::arm(CrashPolicy::Never);
        for step in 0..1000 {
            assert!(!p.should_crash(step));
        }
        assert!(!p.is_armed());
    }

    #[test]
    fn at_step_fires_once() {
        let mut p = ArmedPolicy::arm(CrashPolicy::AtStep(5));
        assert!(!p.should_crash(3));
        assert!(!p.should_crash(4));
        assert!(p.should_crash(5));
        // One-shot: never fires again.
        assert!(!p.should_crash(6));
        assert!(!p.should_crash(100));
    }

    #[test]
    fn countdown_fires_after_n_points() {
        let mut p = ArmedPolicy::arm(CrashPolicy::Countdown(3));
        assert!(!p.should_crash(0));
        assert!(!p.should_crash(1));
        assert!(!p.should_crash(2));
        assert!(p.should_crash(3));
        assert!(!p.should_crash(4));
    }

    #[test]
    fn countdown_zero_fires_immediately() {
        let mut p = ArmedPolicy::arm(CrashPolicy::Countdown(0));
        assert!(p.should_crash(0));
        assert!(!p.should_crash(1));
    }

    #[test]
    fn random_policy_is_reproducible() {
        let run = |seed| {
            let mut p = ArmedPolicy::arm(CrashPolicy::Random { prob: 0.25, seed });
            (0..64).map(|s| p.should_crash(s)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        // Probability 0 and 1 are exact.
        let mut never = ArmedPolicy::arm(CrashPolicy::Random { prob: 0.0, seed: 1 });
        assert!((0..100).all(|s| !never.should_crash(s)));
        let mut always = ArmedPolicy::arm(CrashPolicy::Random { prob: 1.0, seed: 1 });
        assert!((0..100).all(|s| always.should_crash(s)));
    }

    #[test]
    fn catch_crash_catches_simulated_crash() {
        install_quiet_crash_hook();
        let result = catch_crash(|| -> u32 { raise_crash(3, 42) });
        let crashed = result.unwrap_err();
        assert_eq!(crashed.signal.pid, 3);
        assert_eq!(crashed.signal.at_step, 42);
    }

    #[test]
    fn catch_crash_passes_values_through() {
        let result = catch_crash(|| 7u32);
        assert_eq!(result.unwrap(), 7);
    }

    #[test]
    fn catch_crash_propagates_real_panics() {
        install_quiet_crash_hook();
        let outer = panic::catch_unwind(|| {
            let _ = catch_crash(|| -> u32 { panic!("real bug") });
        });
        assert!(outer.is_err(), "real panics must not be swallowed");
    }
}
