//! Crash injection: the crash-schedule layer.
//!
//! The PPM model lets any process crash at any instruction, losing its volatile
//! state. The simulator reproduces this by having every instrumented persistent
//! memory access pass a *crash point* that consults the thread's [`CrashSchedule`];
//! when the schedule fires, the access panics with a [`CrashSignal`] payload.
//! Unwinding destroys the thread's Rust locals — exactly the volatile state the
//! model says is lost — and the capsule runtime (or [`catch_crash`]) catches the
//! signal and restarts execution from the process's restart pointer.
//!
//! Two layers make up the API:
//!
//! * [`CrashSchedule`] — the pluggable decision procedure consulted at every crash
//!   point. Anything implementing it can be installed with
//!   [`PThread::set_crash_schedule`](crate::PThread::set_crash_schedule); the
//!   simulator only touches it behind the pre-computed `crash_armed` fast flag, so
//!   a schedule that reports [`is_armed`](CrashSchedule::is_armed)` == false`
//!   (notably [`CrashPolicy::Never`]) costs a single predictable branch per
//!   instruction.
//! * [`CrashPolicy`] — the declarative configurations the torture tests use
//!   (never / at-step / countdown / random). A policy is *armed* into one
//!   particular [`CrashSchedule`] implementation when installed.
//!
//! For exhaustive crash-point enumeration (the `dfck` sweeper in the `bench`
//! crate), [`CrashPlan`] schedules a *scripted sequence* of crashes by
//! crash-point countdowns — including crashes that land inside the recovery code
//! executed after an earlier crash (nested schedules).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::panic::{self, AssertUnwindSafe};

/// The panic payload used to simulate a crash. Carried through `panic_any` and
/// recognised by [`catch_crash`] / the capsule runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSignal {
    /// The process id of the crashing thread.
    pub pid: usize,
    /// The value of the thread's step counter when the crash fired.
    pub at_step: u64,
}

/// Marker returned by [`catch_crash`] when the closure was interrupted by a
/// simulated crash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Crashed {
    /// The signal that interrupted the closure.
    pub signal: CrashSignal,
}

/// A pluggable crash schedule: decides, at every crash point, whether a simulated
/// crash fires on the thread it is installed on.
///
/// Crash points are each instrumented persistent memory access plus every explicit
/// [`PThread::crash_point`](crate::PThread::crash_point) call. The schedule is
/// consulted with the thread's monotonically increasing step counter.
///
/// Schedules are consulted only while [`is_armed`](CrashSchedule::is_armed)
/// reports `true` (the thread caches that answer in its `crash_armed` fast flag
/// and refreshes it after every consultation), so a schedule that can no longer
/// fire costs nothing on the instruction hot path.
pub trait CrashSchedule: std::fmt::Debug {
    /// Returns `true` if a crash should fire at this crash point. `step` is the
    /// thread's step counter (monotone over the thread's lifetime).
    fn should_crash(&mut self, step: u64) -> bool;

    /// Whether the schedule can still fire. Once this returns `false` the thread
    /// stops consulting the schedule entirely (until a new one is installed).
    fn is_armed(&self) -> bool;
}

/// Decides when a simulated crash fires on a thread.
///
/// This is the declarative configuration layer: installing a policy with
/// [`PThread::set_crash_policy`](crate::PThread::set_crash_policy) *arms* it into
/// a concrete [`CrashSchedule`] implementation. For scripted multi-crash
/// schedules (exhaustive sweeps, crash-during-recovery tests) install a
/// [`CrashPlan`] directly instead.
#[derive(Clone, Debug, Default)]
pub enum CrashPolicy {
    /// Never crash (the default; used for throughput benchmarks).
    #[default]
    Never,
    /// Crash exactly once, when the step counter reaches the given absolute value.
    AtStep(u64),
    /// Crash exactly once, after the given number of additional crash points.
    Countdown(u64),
    /// Crash at each crash point independently with probability `prob`
    /// (seeded for reproducibility). Fires repeatedly — each catch re-arms it.
    ///
    /// The seed names a *family* of RNG streams, not one stream: arming the policy
    /// mixes the installing thread's pid into the seed, so cloning one `Random`
    /// policy across the threads of a torture test yields independent crash
    /// sequences instead of crashing every thread in lockstep.
    Random {
        /// Per-crash-point crash probability in `[0, 1]`.
        prob: f64,
        /// RNG seed, so torture tests are reproducible.
        seed: u64,
    },
}

/// Mix a user-provided seed with a thread's pid into an independent RNG-stream
/// seed (splitmix64 finalizer over the pair, so neighbouring pids land far apart).
pub(crate) fn derive_stream_seed(seed: u64, pid: usize) -> u64 {
    let mut z = seed ^ (pid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Armed state of a [`CrashPolicy`] (holds the RNG for `Random`); the built-in
/// [`CrashSchedule`] implementation. Internal: external callers install
/// policies via [`PThread::set_crash_policy`](crate::PThread::set_crash_policy)
/// or their own [`CrashSchedule`] via `set_crash_schedule`.
#[derive(Debug)]
pub(crate) enum ArmedPolicy {
    Never,
    AtStep(u64),
    Countdown(u64),
    Random { prob: f64, rng: SmallRng },
    /// A one-shot policy that already fired.
    Spent,
}

impl ArmedPolicy {
    /// Arm a policy for the thread with the given pid (the pid picks the RNG
    /// stream of a `Random` policy; see [`CrashPolicy::Random`]).
    pub(crate) fn arm(policy: CrashPolicy, pid: usize) -> ArmedPolicy {
        match policy {
            CrashPolicy::Never => ArmedPolicy::Never,
            CrashPolicy::AtStep(s) => ArmedPolicy::AtStep(s),
            CrashPolicy::Countdown(n) => ArmedPolicy::Countdown(n),
            CrashPolicy::Random { prob, seed } => ArmedPolicy::Random {
                prob,
                rng: SmallRng::seed_from_u64(derive_stream_seed(seed, pid)),
            },
        }
    }
}

impl CrashSchedule for ArmedPolicy {
    #[inline]
    fn should_crash(&mut self, step: u64) -> bool {
        match self {
            ArmedPolicy::Never | ArmedPolicy::Spent => false,
            ArmedPolicy::AtStep(s) => {
                if step >= *s {
                    *self = ArmedPolicy::Spent;
                    true
                } else {
                    false
                }
            }
            ArmedPolicy::Countdown(n) => {
                if *n == 0 {
                    *self = ArmedPolicy::Spent;
                    true
                } else {
                    *n -= 1;
                    false
                }
            }
            ArmedPolicy::Random { prob, rng } => rng.gen_bool(*prob),
        }
    }

    /// Whether the policy can still fire. `PThread` mirrors this into its
    /// `crash_armed` fast flag so the per-instruction crash point is a single
    /// branch when nothing can crash (every throughput run, and any one-shot
    /// policy after it has spent itself).
    fn is_armed(&self) -> bool {
        !matches!(self, ArmedPolicy::Never | ArmedPolicy::Spent)
    }
}

/// A scripted sequence of crashes, expressed as crash-point countdowns: the
/// schedule fires after `gaps[0]` further crash points pass, then re-arms and
/// fires again after `gaps[1]` more crash points, and so on until the script is
/// exhausted.
///
/// Each element follows [`CrashPolicy::Countdown`] semantics: a gap of `0` fires
/// at the very next crash point. Because the countdown for element `i + 1` starts
/// at the crash point *after* crash `i` fired, later elements naturally land
/// inside whatever code runs next — including the recovery code executed in
/// response to crash `i`. This is how the `dfck` sweeper enumerates nested
/// crash-during-recovery schedules: `CrashPlan::new([k, m])` crashes at workload
/// crash point `k` and then again `m` points into the recovery/re-execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashPlan {
    /// Remaining countdowns, in firing order (`gaps[cursor]` is live).
    gaps: Vec<u64>,
    cursor: usize,
}

impl CrashPlan {
    /// A plan that fires once per element of `gaps` (see the type docs for the
    /// countdown semantics). An empty script never fires.
    pub fn new(gaps: impl Into<Vec<u64>>) -> CrashPlan {
        CrashPlan {
            gaps: gaps.into(),
            cursor: 0,
        }
    }

    /// A plan with a single crash after `gap` further crash points — equivalent
    /// to [`CrashPolicy::Countdown`]`(gap)`.
    pub fn once(gap: u64) -> CrashPlan {
        CrashPlan::new(vec![gap])
    }

    /// A nested crash-during-recovery schedule: crash after `gap` further crash
    /// points, then once per element of `recovery_gaps`, each counting from the
    /// crash point after the previous crash — so small elements land inside the
    /// recovery code the previous crash triggered. `nested(k, &[m])` is the
    /// depth-1 schedule `[k, m]`; `nested(k, &[m, n])` is the depth-2 schedule
    /// `[k, m, n]` whose third crash interrupts the *recovery of the recovery*
    /// (the `dfck` sweeper's deepest scripted flavour).
    pub fn nested(gap: u64, recovery_gaps: &[u64]) -> CrashPlan {
        let mut gaps = Vec::with_capacity(1 + recovery_gaps.len());
        gaps.push(gap);
        gaps.extend_from_slice(recovery_gaps);
        CrashPlan::new(gaps)
    }

    /// How many crashes of the script have not fired yet.
    pub fn remaining(&self) -> usize {
        self.gaps.len() - self.cursor
    }

    /// The remaining script, live countdowns included (on a freshly built plan:
    /// the full script). Lets harnesses label a sweep's replays without
    /// re-deriving the gap vector they scheduled.
    pub fn script(&self) -> &[u64] {
        &self.gaps[self.cursor..]
    }
}

impl CrashSchedule for CrashPlan {
    fn should_crash(&mut self, _step: u64) -> bool {
        let Some(gap) = self.gaps.get_mut(self.cursor) else {
            return false;
        };
        if *gap == 0 {
            self.cursor += 1;
            true
        } else {
            *gap -= 1;
            false
        }
    }

    fn is_armed(&self) -> bool {
        self.cursor < self.gaps.len()
    }
}

/// Raise a simulated crash on the current thread by panicking with a
/// [`CrashSignal`] payload. Normally called from inside `PThread`, but exposed so
/// tests can crash "between" instructions as well.
#[cold]
pub fn raise_crash(pid: usize, at_step: u64) -> ! {
    panic::panic_any(CrashSignal { pid, at_step })
}

/// Returns the crash signal if the panic payload is a simulated crash.
pub fn crash_signal_of(payload: &(dyn std::any::Any + Send)) -> Option<CrashSignal> {
    payload.downcast_ref::<CrashSignal>().copied()
}

/// Run a closure, converting a simulated crash into `Err(Crashed)`.
///
/// Real panics (assertion failures, bugs) are propagated unchanged so that test
/// failures are never silently swallowed by the crash machinery.
pub fn catch_crash<R>(f: impl FnOnce() -> R) -> Result<R, Crashed> {
    match panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => match crash_signal_of(payload.as_ref()) {
            Some(signal) => Err(Crashed { signal }),
            None => panic::resume_unwind(payload),
        },
    }
}

/// Install a panic hook that suppresses the default "thread panicked" message for
/// simulated crashes while delegating every other panic to the previous hook.
///
/// Call once at the start of crash-torture tests or examples to keep their output
/// readable; calling it multiple times is harmless.
pub fn install_quiet_crash_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashSignal>().is_some() {
                // Simulated crash: stay quiet, the harness will recover.
                return;
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_policy_never_fires() {
        let mut p = ArmedPolicy::arm(CrashPolicy::Never, 0);
        for step in 0..1000 {
            assert!(!p.should_crash(step));
        }
        assert!(!p.is_armed());
    }

    #[test]
    fn at_step_fires_once() {
        let mut p = ArmedPolicy::arm(CrashPolicy::AtStep(5), 0);
        assert!(!p.should_crash(3));
        assert!(!p.should_crash(4));
        assert!(p.should_crash(5));
        // One-shot: never fires again.
        assert!(!p.should_crash(6));
        assert!(!p.should_crash(100));
    }

    #[test]
    fn countdown_fires_after_n_points() {
        let mut p = ArmedPolicy::arm(CrashPolicy::Countdown(3), 0);
        assert!(!p.should_crash(0));
        assert!(!p.should_crash(1));
        assert!(!p.should_crash(2));
        assert!(p.should_crash(3));
        assert!(!p.should_crash(4));
    }

    #[test]
    fn countdown_zero_fires_immediately() {
        let mut p = ArmedPolicy::arm(CrashPolicy::Countdown(0), 0);
        assert!(p.should_crash(0));
        assert!(!p.should_crash(1));
    }

    #[test]
    fn random_policy_is_reproducible() {
        let run = |seed| {
            let mut p = ArmedPolicy::arm(CrashPolicy::Random { prob: 0.25, seed }, 0);
            (0..64).map(|s| p.should_crash(s)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        // Probability 0 and 1 are exact.
        let mut never = ArmedPolicy::arm(CrashPolicy::Random { prob: 0.0, seed: 1 }, 0);
        assert!((0..100).all(|s| !never.should_crash(s)));
        let mut always = ArmedPolicy::arm(CrashPolicy::Random { prob: 1.0, seed: 1 }, 0);
        assert!((0..100).all(|s| always.should_crash(s)));
    }

    #[test]
    fn random_policy_streams_differ_per_pid() {
        // The same declarative policy cloned across threads must not crash them
        // in lockstep: each pid arms an independent stream of the seed family.
        let fire_steps = |pid: usize| {
            let mut p = ArmedPolicy::arm(CrashPolicy::Random { prob: 0.2, seed: 7 }, pid);
            (0..256).filter(|&s| p.should_crash(s)).collect::<Vec<u64>>()
        };
        let a0 = fire_steps(0);
        let a1 = fire_steps(1);
        let a2 = fire_steps(2);
        assert!(!a0.is_empty() && !a1.is_empty() && !a2.is_empty());
        assert_ne!(a0, a1, "pids 0 and 1 crash at identical points");
        assert_ne!(a1, a2, "pids 1 and 2 crash at identical points");
        // Still reproducible per pid.
        assert_eq!(a1, fire_steps(1));
    }

    #[test]
    fn derive_stream_seed_separates_neighbouring_pids() {
        let s: Vec<u64> = (0..8).map(|pid| derive_stream_seed(42, pid)).collect();
        let mut uniq = s.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), s.len(), "stream seeds collide: {s:?}");
    }

    #[test]
    fn crash_plan_fires_per_script_element() {
        // Gaps [2, 0, 1]: fire at the 3rd point, then immediately at the next,
        // then one point later. Countdown semantics per element.
        let mut p = CrashPlan::new(vec![2, 0, 1]);
        assert!(p.is_armed());
        assert_eq!(p.remaining(), 3);
        let fired: Vec<bool> = (0..8).map(|s| p.should_crash(s)).collect();
        assert_eq!(fired, vec![false, false, true, true, false, true, false, false]);
        assert!(!p.is_armed());
        assert_eq!(p.remaining(), 0);
    }

    #[test]
    fn crash_plan_once_matches_countdown() {
        for gap in [0u64, 1, 5] {
            let mut plan = CrashPlan::once(gap);
            let mut countdown = ArmedPolicy::arm(CrashPolicy::Countdown(gap), 0);
            for step in 0..16 {
                assert_eq!(
                    plan.should_crash(step),
                    countdown.should_crash(step),
                    "gap {gap} step {step}"
                );
            }
        }
    }

    #[test]
    fn nested_constructor_scripts_depth2_schedules() {
        let mut p = CrashPlan::nested(2, &[0, 1]);
        assert_eq!(p.remaining(), 3);
        // Fires at the 3rd point, immediately at the next (inside "recovery"),
        // then one point later (inside "recovery of recovery").
        let fired: Vec<bool> = (0..8).map(|s| p.should_crash(s)).collect();
        assert_eq!(fired, vec![false, false, true, true, false, true, false, false]);
        assert_eq!(
            CrashPlan::nested(5, &[]),
            CrashPlan::once(5),
            "no recovery gaps degenerates to a single crash"
        );
    }

    #[test]
    fn nested_depth3_script_and_remaining_agree_along_the_whole_schedule() {
        // Depth-3 schedule: crash in the workload, in its recovery, in the
        // recovery of that recovery, and once more. `script()` must always show
        // the live countdown plus the untouched tail, and `remaining()` must
        // drop by exactly one per fire.
        let mut p = CrashPlan::nested(4, &[2, 0, 3]);
        assert_eq!(p.script(), &[4, 2, 0, 3]);
        assert_eq!(p.remaining(), 4);
        let mut fires = Vec::new();
        for step in 0..16u64 {
            let before_remaining = p.remaining();
            if p.should_crash(step) {
                fires.push(step);
                assert_eq!(p.remaining(), before_remaining - 1, "at step {step}");
            } else {
                assert_eq!(p.remaining(), before_remaining, "at step {step}");
            }
            // script()[0] is the live (decremented) countdown; the tail is the
            // untouched rest of the schedule.
            match p.remaining() {
                4 => assert_eq!(p.script()[1..], [2, 0, 3]),
                3 => assert_eq!(p.script()[1..2], [0]),
                2 => assert_eq!(p.script(), &[0, 3]),
                1 => assert!(p.script()[0] <= 3),
                0 => assert_eq!(p.script(), &[] as &[u64]),
                _ => unreachable!(),
            }
            assert_eq!(p.is_armed(), p.remaining() > 0);
        }
        // Countdown semantics: gap 4 fires at the 5th point, gap 2 two points
        // later at the 8th, gap 0 immediately at the 9th, gap 3 at the 13th.
        assert_eq!(fires, vec![4, 7, 8, 12]);
        assert!(!p.is_armed());
    }

    #[test]
    fn empty_crash_plan_is_disarmed() {
        let mut p = CrashPlan::new(Vec::new());
        assert!(!p.is_armed());
        assert!((0..32).all(|s| !p.should_crash(s)));
    }

    #[test]
    fn catch_crash_catches_simulated_crash() {
        install_quiet_crash_hook();
        let result = catch_crash(|| -> u32 { raise_crash(3, 42) });
        let crashed = result.unwrap_err();
        assert_eq!(crashed.signal.pid, 3);
        assert_eq!(crashed.signal.at_step, 42);
    }

    #[test]
    fn catch_crash_passes_values_through() {
        let result = catch_crash(|| 7u32);
        assert_eq!(result.unwrap(), 7);
    }

    #[test]
    fn catch_crash_propagates_real_panics() {
        install_quiet_crash_hook();
        let outer = panic::catch_unwind(|| {
            let _ = catch_crash(|| -> u32 { panic!("real bug") });
        });
        assert!(outer.is_err(), "real panics must not be swallowed");
    }
}
