//! Deterministic cooperative thread scheduling: the interleaving layer.
//!
//! The paper's adversary interleaves processes arbitrarily *and* crashes any of
//! them at any instruction. The crash half of that adversary has always been
//! deterministic here (the [`CrashSchedule`](crate::CrashSchedule) layer); this
//! module makes the interleaving half deterministic too, so the `dfck` sweeper
//! can enumerate (interleaving × crash point) instead of replaying one fixed
//! thread schedule per crash point.
//!
//! ## How it works
//!
//! A [`ThreadScheduler`] hands a *baton* around the participating processes in
//! round-robin order. Only the baton holder may execute simulated instructions;
//! everyone else is parked inside their next instruction's yield point, *before*
//! the memory access happens. Each turn ("slice") has an instruction budget
//! drawn deterministically from a seed — perturbing the seed perturbs the slice
//! lengths and therefore enumerates distinct interleavings, while the same seed
//! always reproduces the same interleaving bit-for-bit.
//!
//! The yield point uses **rotate-on-next-yield** semantics: when a slice's
//! budget is exhausted, the *next* instruction's yield point hands the baton
//! over and parks before the access executes; that instruction then runs at the
//! start of the process's next slice. This guarantees that between two yield
//! points exactly one process runs — driver code after a process's last granted
//! instruction (statistics snapshots, crash handling, queue recovery decisions)
//! is always exclusive with simulated execution, so
//! [`PMem::crash_all`](crate::PMem::crash_all)'s quiescence requirement holds
//! by construction even in genuinely concurrent replays.
//!
//! ## Crashes under the scheduler
//!
//! A per-process crash ([`PMem::crash_thread`](crate::PMem::crash_thread))
//! needs nothing special: the victim unwinds, recovers, and its recovery
//! instructions are scheduled like any others — so a peer's crash points *do*
//! land inside the victim's recovery window, which is exactly the state space
//! the sweep wants.
//!
//! A full-system crash must also take down the *other* processes, which are
//! parked mid-instruction. The crashing process calls
//! [`PThread::kill_peers`](crate::PThread::kill_peers) (after
//! [`crash_all`](crate::PMem::crash_all)); each peer's next yield point then
//! returns a kill verdict instead of running, and the peer raises a normal
//! [`CrashSignal`](crate::CrashSignal) from its own instruction stream. Kills
//! are counted, not flagged: two back-to-back system crashes deliver two kills
//! even to a process that had no chance to run in between, keeping the number
//! of observed crashes per process independent of OS timing.
//!
//! ## Cost model
//!
//! The per-instruction hook sits behind a `sched_armed` fast flag on
//! [`PThread`](crate::PThread) — the same pattern as `crash_armed` and
//! `audit_armed` — so a run without a scheduler pays one predictable
//! never-taken branch per instruction and the `instr_overhead` disarmed rows
//! regress 0%. Armed, every instruction takes a mutex; arm it in sweeps, not in
//! throughput runs.

use std::sync::{Arc, Condvar, Mutex};

/// Configuration for a [`ThreadScheduler`].
#[derive(Clone, Copy, Debug)]
pub struct SchedConfig {
    /// Number of participating processes (pids `0..threads`).
    pub threads: usize,
    /// Seed for the slice-budget sequence; distinct seeds enumerate distinct
    /// interleavings, equal seeds reproduce the interleaving exactly.
    pub seed: u64,
    /// Minimum instructions per slice (default 3; clamped to at least 1).
    pub base_budget: u64,
    /// Maximum seeded extra instructions per slice (default 6): each slice runs
    /// `base_budget + (seeded value in 0..=budget_spread)` instructions.
    pub budget_spread: u64,
}

impl SchedConfig {
    /// A scheduler configuration with the default budget shape. The defaults
    /// are fixed constants (not environment-dependent), so recorded sweep
    /// results are comparable across machines.
    pub fn new(threads: usize, seed: u64) -> SchedConfig {
        SchedConfig {
            threads,
            seed,
            base_budget: 3,
            budget_spread: 6,
        }
    }
}

/// What a yield point told the calling process to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SchedAction {
    /// Execute the instruction; the payload is the global (cross-process)
    /// instruction index it was granted, used for linearization timestamps.
    Run(u64),
    /// A full-system crash landed while this process was parked: raise a
    /// [`CrashSignal`](crate::CrashSignal) instead of executing.
    Kill,
}

/// splitmix64 finalizer — the workspace's standard cheap mixer.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct SchedState {
    registered: Vec<bool>,
    registered_count: usize,
    started: bool,
    /// The baton holder (only meaningful once `started`).
    current: usize,
    /// Instructions left in the current slice.
    remaining: u64,
    /// Index of the current slice (names its budget in the seeded sequence).
    slice_index: u64,
    /// Instructions granted so far in the current slice.
    slice_steps: u64,
    /// Total instructions granted across all processes (the global clock).
    global_step: u64,
    /// Completed slices, in order: `(pid, instructions granted)`.
    trace: Vec<(usize, u64)>,
    /// Outstanding kill deliveries per pid (counted, so coalescing cannot make
    /// the number of observed crashes timing-dependent).
    kill_pending: Vec<u32>,
    finished: Vec<bool>,
}

/// A deterministic cooperative round-robin scheduler over the processes of one
/// replay. See the [module docs](self) for the execution model.
///
/// Install on each worker's handle with
/// [`PThread::set_thread_scheduler`](crate::PThread::set_thread_scheduler);
/// workers block at their first yield point until all `threads` participants
/// have registered, then the baton starts at the lowest pid.
pub struct ThreadScheduler {
    config: SchedConfig,
    state: Mutex<SchedState>,
    cv: Condvar,
}

impl ThreadScheduler {
    /// Build a scheduler for `config.threads` participants.
    pub fn new(config: SchedConfig) -> Arc<ThreadScheduler> {
        assert!(config.threads > 0, "a schedule needs at least one process");
        Arc::new(ThreadScheduler {
            config,
            state: Mutex::new(SchedState {
                registered: vec![false; config.threads],
                registered_count: 0,
                started: false,
                current: 0,
                remaining: 0,
                slice_index: 0,
                slice_steps: 0,
                global_step: 0,
                trace: Vec::new(),
                kill_pending: vec![0; config.threads],
                finished: vec![false; config.threads],
            }),
            cv: Condvar::new(),
        })
    }

    /// The configuration this scheduler was built with.
    pub fn config(&self) -> SchedConfig {
        self.config
    }

    /// The budget of slice `slice` under this scheduler's seed.
    fn slice_budget(&self, slice: u64) -> u64 {
        let r = mix64(self.config.seed ^ slice.wrapping_mul(0x517C_C1B7_2722_0A95));
        (self.config.base_budget + r % (self.config.budget_spread + 1)).max(1)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SchedState> {
        // A worker never panics while holding the lock (kills and crashes are
        // raised after release), but be robust against poisoning anyway so one
        // buggy test cannot hang the whole suite on a secondary deadlock.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub(crate) fn register(&self, pid: usize) {
        let mut st = self.lock();
        assert!(
            pid < self.config.threads,
            "pid {pid} out of range for a {}-process schedule",
            self.config.threads
        );
        assert!(!st.registered[pid], "pid {pid} registered twice");
        st.registered[pid] = true;
        st.registered_count += 1;
        if st.registered_count == self.config.threads {
            st.started = true;
            st.current = (0..self.config.threads)
                .find(|&p| !st.finished[p])
                .unwrap_or(0);
            st.remaining = self.slice_budget(0);
            self.cv.notify_all();
        }
    }

    /// Flush the current slice into the trace and hand the baton to the next
    /// unfinished process (round-robin). Caller holds the lock.
    fn rotate_locked(&self, st: &mut SchedState) {
        if st.slice_steps > 0 {
            let slice = (st.current, st.slice_steps);
            st.trace.push(slice);
            st.slice_steps = 0;
        }
        st.slice_index += 1;
        st.remaining = self.slice_budget(st.slice_index);
        let n = self.config.threads;
        for off in 1..=n {
            let cand = (st.current + off) % n;
            if !st.finished[cand] {
                st.current = cand;
                break;
            }
        }
        self.cv.notify_all();
    }

    /// The per-instruction yield point (called from `PThread`'s accounting step
    /// behind the `sched_armed` fast flag). Blocks until this pid holds the
    /// baton with budget, or a kill is pending.
    pub(crate) fn yield_point(&self, pid: usize) -> SchedAction {
        let mut st = self.lock();
        loop {
            if st.kill_pending[pid] > 0 {
                st.kill_pending[pid] -= 1;
                return SchedAction::Kill;
            }
            if st.started && st.current == pid {
                if st.remaining > 0 {
                    st.remaining -= 1;
                    st.slice_steps += 1;
                    st.global_step += 1;
                    return SchedAction::Run(st.global_step);
                }
                // Budget exhausted: hand over *before* executing this
                // instruction; it runs at the start of this pid's next slice.
                self.rotate_locked(&mut st);
                if st.current == pid {
                    continue; // sole runnable process: fresh slice, run on
                }
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Mark `pid` done: it executes no further instructions and the baton skips
    /// it. Idempotent, so both an explicit call and a drop guard may run it.
    /// Harnesses should install a [`FinishGuard`] so a real panic in one worker
    /// (an assertion failure, not a simulated crash) releases its peers instead
    /// of deadlocking the replay.
    pub fn finish(&self, pid: usize) {
        let mut st = self.lock();
        if st.finished[pid] {
            return;
        }
        st.finished[pid] = true;
        if st.started && st.current == pid {
            self.rotate_locked(&mut st);
        }
        self.cv.notify_all();
    }

    /// Queue a kill for every registered, unfinished process except `pid`
    /// (called by the process applying a full-system crash, after
    /// [`PMem::crash_all`](crate::PMem::crash_all)). Each peer's next yield
    /// point consumes one kill and raises a crash instead of executing.
    pub(crate) fn kill_peers(&self, pid: usize) {
        let mut st = self.lock();
        for q in 0..self.config.threads {
            if q != pid && st.registered[q] && !st.finished[q] {
                st.kill_pending[q] += 1;
            }
        }
        self.cv.notify_all();
    }

    /// The recorded interleaving: completed slices in execution order, as
    /// `(pid, instructions granted)`. Meaningful once every participant has
    /// finished (partial slices are flushed when their process finishes).
    pub fn trace(&self) -> Vec<(usize, u64)> {
        self.lock().trace.clone()
    }

    /// A 64-bit digest of [`trace`](ThreadScheduler::trace), for cheap
    /// determinism assertions and replay labelling.
    pub fn fingerprint(&self) -> u64 {
        let st = self.lock();
        let mut fp = 0xD6E8_FEB8_6659_FD93u64 ^ (st.trace.len() as u64);
        for &(pid, steps) in &st.trace {
            fp = mix64(fp ^ pid as u64);
            fp = mix64(fp ^ steps);
        }
        fp
    }

    /// Total simulated instructions granted so far across all processes.
    pub fn global_steps(&self) -> u64 {
        self.lock().global_step
    }

    /// A guard that [`finish`](ThreadScheduler::finish)es `pid` when dropped —
    /// unwinding from a real panic then releases the other workers instead of
    /// deadlocking them at their yield points.
    pub fn finish_guard(self: &Arc<Self>, pid: usize) -> FinishGuard {
        FinishGuard {
            sched: Arc::clone(self),
            pid,
        }
    }
}

impl std::fmt::Debug for ThreadScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.lock();
        f.debug_struct("ThreadScheduler")
            .field("threads", &self.config.threads)
            .field("seed", &self.config.seed)
            .field("started", &st.started)
            .field("current", &st.current)
            .field("global_step", &st.global_step)
            .field("slices", &st.trace.len())
            .finish()
    }
}

/// Drop guard returned by [`ThreadScheduler::finish_guard`].
pub struct FinishGuard {
    sched: Arc<ThreadScheduler>,
    pid: usize,
}

impl Drop for FinishGuard {
    fn drop(&mut self) {
        self.sched.finish(self.pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::{catch_crash, install_quiet_crash_hook};
    use crate::mem::PMem;

    /// Run `threads` workers, each issuing `per_thread` reads of its own word
    /// under a scheduler with the given seed; return (trace, fingerprint).
    fn run_reads(threads: usize, per_thread: u64, seed: u64) -> (Vec<(usize, u64)>, u64) {
        let mem = PMem::with_threads(threads);
        let words: Vec<_> = (0..threads)
            .map(|_| mem.thread(0).alloc(crate::LINE_WORDS))
            .collect();
        let sched = ThreadScheduler::new(SchedConfig::new(threads, seed));
        std::thread::scope(|s| {
            for (pid, &word) in words.iter().enumerate() {
                let mem = &mem;
                let sched = &sched;
                s.spawn(move || {
                    let t = mem.thread(pid);
                    t.set_thread_scheduler(Arc::clone(sched));
                    let _guard = sched.finish_guard(pid);
                    for _ in 0..per_thread {
                        t.read(word);
                    }
                    t.clear_thread_scheduler();
                });
            }
        });
        (sched.trace(), sched.fingerprint())
    }

    #[test]
    fn same_seed_reproduces_the_interleaving_bit_for_bit() {
        let (trace_a, fp_a) = run_reads(3, 40, 7);
        let (trace_b, fp_b) = run_reads(3, 40, 7);
        assert_eq!(trace_a, trace_b);
        assert_eq!(fp_a, fp_b);
    }

    #[test]
    fn distinct_seeds_enumerate_distinct_interleavings() {
        let fingerprints: Vec<u64> = (0..8).map(|seed| run_reads(2, 60, seed).1).collect();
        let mut unique = fingerprints.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(
            unique.len(),
            fingerprints.len(),
            "seeds collide: {fingerprints:?}"
        );
    }

    #[test]
    fn trace_accounts_for_every_instruction_and_alternates_processes() {
        let (trace, _) = run_reads(2, 50, 3);
        let total: u64 = trace.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 100, "every granted instruction appears in the trace");
        assert!(trace.iter().any(|&(pid, _)| pid == 0));
        assert!(trace.iter().any(|&(pid, _)| pid == 1));
        // Round-robin over two live processes: consecutive slices alternate
        // until one side finishes (the tail is the survivor draining alone).
        let first_single_tail = trace
            .windows(2)
            .position(|w| w[0].0 == w[1].0)
            .unwrap_or(trace.len());
        for w in trace[..first_single_tail].windows(2) {
            assert_ne!(w[0].0, w[1].0, "live processes must alternate: {trace:?}");
        }
        // Slice budgets respect the configured shape (base 3, spread 6), except
        // possibly each pid's final partial slice.
        for &(_, steps) in &trace {
            assert!(steps <= 9, "slice exceeds base+spread: {trace:?}");
        }
    }

    #[test]
    fn sole_survivor_keeps_running_after_peer_finishes() {
        // Pid 1 issues far fewer instructions; pid 0 must drain alone afterwards.
        let mem = PMem::with_threads(2);
        let a = mem.thread(0).alloc(crate::LINE_WORDS);
        let sched = ThreadScheduler::new(SchedConfig::new(2, 5));
        std::thread::scope(|s| {
            for pid in 0..2 {
                let mem = &mem;
                let sched = &sched;
                s.spawn(move || {
                    let t = mem.thread(pid);
                    t.set_thread_scheduler(Arc::clone(sched));
                    let _guard = sched.finish_guard(pid);
                    let n = if pid == 0 { 80 } else { 4 };
                    for _ in 0..n {
                        t.read(a);
                    }
                });
            }
        });
        let total: u64 = sched.trace().iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 84);
    }

    #[test]
    fn kill_is_delivered_at_the_peers_next_yield_point() {
        install_quiet_crash_hook();
        let mem = PMem::with_threads(2);
        let a = mem.thread(0).alloc(crate::LINE_WORDS);
        let sched = ThreadScheduler::new(SchedConfig::new(2, 1));
        let results: Vec<(usize, bool)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|pid| {
                    let mem = &mem;
                    let sched = &sched;
                    s.spawn(move || {
                        let t = mem.thread(pid);
                        t.set_thread_scheduler(Arc::clone(sched));
                        let _guard = sched.finish_guard(pid);
                        if pid == 0 {
                            // Run a few instructions, then broadcast a kill and
                            // keep going: the peer must crash, we must not.
                            for _ in 0..4 {
                                t.read(a);
                            }
                            t.kill_peers();
                            for _ in 0..20 {
                                t.read(a);
                            }
                            (0, false)
                        } else {
                            let crashed = catch_crash(|| {
                                for _ in 0..1_000 {
                                    t.read(a);
                                }
                            })
                            .is_err();
                            let killed = t.take_killed();
                            assert!(killed, "kill must set the killed marker");
                            (1, crashed)
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(results, vec![(0, false), (1, true)]);
    }

    #[test]
    fn kill_counts_do_not_coalesce() {
        // Two back-to-back kills must be delivered as two crashes even though
        // the victim had no chance to run in between.
        install_quiet_crash_hook();
        let mem = PMem::with_threads(2);
        let a = mem.thread(0).alloc(crate::LINE_WORDS);
        let sched = ThreadScheduler::new(SchedConfig::new(2, 2));
        let victim_crashes: u32 = std::thread::scope(|s| {
            let mem = &mem;
            let sched_ref = &sched;
            let killer = s.spawn(move || {
                let t = mem.thread(0);
                t.set_thread_scheduler(Arc::clone(sched_ref));
                let _guard = sched_ref.finish_guard(0);
                for _ in 0..3 {
                    t.read(a);
                }
                t.kill_peers();
                t.kill_peers();
                for _ in 0..10 {
                    t.read(a);
                }
            });
            let victim = s.spawn(move || {
                let t = mem.thread(1);
                t.set_thread_scheduler(Arc::clone(sched_ref));
                let _guard = sched_ref.finish_guard(1);
                let mut crashes = 0;
                let mut issued = 0u64;
                while issued < 40 {
                    match catch_crash(|| {
                        for _ in issued..40 {
                            t.read(a);
                        }
                    }) {
                        Ok(()) => issued = 40,
                        Err(_) => {
                            assert!(t.take_killed());
                            crashes += 1;
                            issued = t.step_count().min(40);
                        }
                    }
                }
                crashes
            });
            killer.join().unwrap();
            victim.join().unwrap()
        });
        assert_eq!(victim_crashes, 2);
        drop(sched);
    }

    #[test]
    fn single_process_schedule_degenerates_to_plain_execution() {
        let (trace, _) = run_reads(1, 25, 9);
        let total: u64 = trace.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 25);
        assert!(trace.iter().all(|&(pid, _)| pid == 0));
    }
}
