//! Vector-clock happens-before analyzer (`DF_HB`): data races and
//! persist-order (cross-failure) races over the simulated instruction stream.
//!
//! The flush-order auditor ([`crate::FlushAuditor`]) is *exposure*-based: it
//! flags published-but-unflushed cache lines. This module generalizes that to
//! true *ordering*, the correctness criterion of "The Path to Durable
//! Linearizability": it maintains FastTrack-style vector clocks per process and
//! per word, draws release/acquire edges from CAS/fetch-add sites and the
//! documented [`write_release`](crate::PThread::write_release) annotations,
//! and flags
//!
//! 1. **data races** — two conflicting plain-word accesses with no
//!    happens-before path between them, and
//! 2. **cross-failure races** — a post-crash read of a word whose last write
//!    was *not* flush+fence ordered before the crash point while a publishing
//!    CAS that made the word reachable may have persisted.
//!
//! The simulator persists eagerly at the flush, so a skipped `fence` can never
//! change a replay's durable image — but on the modelled machine `clflushopt`
//! without `sfence` is unordered and may not have completed at the crash. The
//! analyzer therefore tracks the *discipline*, not the simulated outcome: a
//! word counts as durably ordered only once some thread that flushed its line
//! issues a fence **or a locked RMW** (see below), and a publishing CAS counts
//! as possibly-durable once its own line was flushed at all. This is exactly
//! the strictness that catches the "flush without ordering before the
//! publication" bug class, which is invisible to both the eager-persist
//! replay and the flush-order auditor.
//!
//! ## What orders a flush
//!
//! Following the Px86 persistency model (Raad et al., POPL 2020), `clflushopt`
//! is ordered by `sfence`/`mfence` *and by lock-prefixed read-modify-write
//! instructions* — a CAS (successful or not) or fetch-add drains the issuing
//! thread's pending flushes exactly like a fence. This is the rule the
//! paper's §9 fence elision relies on: the `-Opt` variants (and the log
//! queue's claim protocol) issue `flush(line); cas(...)` with no fence, which
//! is sound because the locked CAS both orders the flush and publishes. A
//! plain or [`write_release`](crate::PThread::write_release) store is a plain
//! `mov` on x86 and orders nothing — flush-then-release-store publication
//! without an intervening fence is still flagged.
//!
//! Arming follows the auditor's pattern: `DF_HB=1` arms every machine the
//! process builds (shared-cache model only), [`HbAnalyzer::arm`] arms one
//! machine, and the per-thread fast flag lives in the packed `hot_armed` byte
//! so the disarmed fast path is unchanged. While armed, each instruction's
//! memory access runs under the analyzer lock, which linearizes armed accesses
//! — the analyzer's view of the interleaving is exactly the order the accesses
//! actually executed in, so truly concurrent tests cannot produce spurious
//! inversion-of-observation flags.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::{Mutex, MutexGuard};

use crate::addr::PAddr;

/// Reports are capped so a systematically broken workload cannot OOM the
/// analyzer; the flag *counters* keep counting past the cap.
const MAX_REPORTS: usize = 32;

/// One recorded access to a plain word: who, at which epoch of their own
/// clock, and at which per-thread instruction step (for reports).
#[derive(Clone, Copy, Debug)]
struct Access {
    pid: usize,
    epoch: u64,
    step: u64,
}

/// Per-word analyzer state.
#[derive(Default)]
struct WordState {
    /// `Some` once the word has been the target of a CAS / fetch-add /
    /// `write_release`: the word is a synchronization word carrying a release
    /// clock, and plain accesses to it acquire instead of being race-checked.
    sync: Option<Vec<u64>>,
    /// Last plain write (plain words only).
    last_write: Option<Access>,
    /// Plain reads since the last write, at most one per pid.
    reads: Vec<Access>,
}

/// A word written since it was last durably ordered (flush+fence), tracked per
/// cache line so `flush` can mark every word of the line at once.
struct DirtyWord {
    addr: u64,
    pid: usize,
    step: u64,
    /// Bit `pid % 64` set once `pid` flushed this line after the write; the
    /// word is promoted (durably ordered) when any such pid fences.
    flushed_mask: u64,
}

/// A plain word that was still dirty when a synchronization write by the same
/// pid published on another line — the word may be reachable by recovery while
/// its persist is not ordered before a crash.
struct Exposure {
    arena: u64,
    word: u64,
    writer: usize,
    write_step: u64,
    publisher: u64,
    publish_step: u64,
    /// The publishing word itself was durably ordered (flush+fence) after the
    /// publication — the exposure survives a crash even in the strict model.
    durable: bool,
}

/// Mutable analyzer state, all under one mutex (the armed instruction paths
/// take it around the actual memory access).
#[derive(Default)]
pub(crate) struct HbInner {
    flags: u64,
    /// Per-pid vector clocks. An empty inner vec means the pid has not been
    /// seen yet; initialization sets `clocks[p][p] = 1` so that a fresh pid's
    /// accesses are unordered w.r.t. everyone it has not synchronized with.
    clocks: Vec<Vec<u64>>,
    /// `(arena id, word addr)` → clock state.
    words: HashMap<(u64, u64), WordState>,
    /// `(arena id, line base)` → dirty words of the line.
    lines: HashMap<(u64, u64), Vec<DirtyWord>>,
    exposures: Vec<Exposure>,
    /// Dedupe set for `exposures`, keyed `(arena, word)`.
    exposed: HashSet<(u64, u64)>,
    /// Words destroyed (in the ordering model) by a crash while reachable:
    /// reading one of these post-crash is the cross-failure race. The value is
    /// the pre-computed "why" half of the report.
    lost: HashMap<(u64, u64), String>,
    reports: Vec<String>,
}

fn clk(c: &[u64], q: usize) -> u64 {
    c.get(q).copied().unwrap_or(0)
}

fn join(into: &mut Vec<u64>, from: &[u64]) {
    if into.len() < from.len() {
        into.resize(from.len(), 0);
    }
    for (i, v) in from.iter().enumerate() {
        if *v > into[i] {
            into[i] = *v;
        }
    }
}

fn push_report(reports: &mut Vec<String>, msg: String) {
    if reports.len() < MAX_REPORTS {
        reports.push(msg);
    }
}

fn line_base(addr: u64) -> u64 {
    addr & !(crate::LINE_WORDS - 1)
}
impl HbInner {
    fn ensure_pid(&mut self, pid: usize) {
        if self.clocks.len() <= pid {
            self.clocks.resize_with(pid + 1, Vec::new);
        }
        if clk(&self.clocks[pid], pid) == 0 {
            if self.clocks[pid].len() <= pid {
                self.clocks[pid].resize(pid + 1, 0);
            }
            self.clocks[pid][pid] = 1;
        }
    }

    /// Handle-creation / scheduler-registration edge: everything every known
    /// pid has done so far happens-before what `pid` does next, and what the
    /// peers do *after* this point stays unordered (their epochs advance).
    /// This over-approximates the host-language spawn/registration edge that
    /// created the handle — handles are `!Send`, so a handle used on a thread
    /// was created on it, after a real synchronization edge from its creator.
    pub(crate) fn on_thread(&mut self, pid: usize) {
        self.ensure_pid(pid);
        let mut joined: Vec<u64> = Vec::new();
        for c in &self.clocks {
            join(&mut joined, c);
        }
        join(&mut self.clocks[pid], &joined);
        for (q, c) in self.clocks.iter_mut().enumerate() {
            if q != pid && clk(c, q) != 0 {
                c[q] += 1;
            }
        }
    }

    fn mark_dirty(&mut self, arena: u64, addr: u64, pid: usize, step: u64) {
        let words = self.lines.entry((arena, line_base(addr))).or_default();
        if let Some(d) = words.iter_mut().find(|d| d.addr == addr) {
            d.pid = pid;
            d.step = step;
            d.flushed_mask = 0;
        } else {
            words.push(DirtyWord { addr, pid, step, flushed_mask: 0 });
        }
    }

    fn check_lost_read(&mut self, arena: u64, addr: PAddr, pid: usize, step: u64) -> u64 {
        if let Some(why) = self.lost.remove(&(arena, addr.0)) {
            self.flags += 1;
            push_report(
                &mut self.reports,
                format!(
                    "cross-failure race: pid {pid} read {addr:?} at step {step} after a crash, \
                     but {why}"
                ),
            );
            1
        } else {
            0
        }
    }

    /// Plain read. Returns the number of flags raised (attributed to `pid`).
    pub(crate) fn note_read(&mut self, arena: u64, addr: PAddr, pid: usize, step: u64) -> u64 {
        self.ensure_pid(pid);
        let mut flags = self.check_lost_read(arena, addr, pid, step);
        let ws = self.words.entry((arena, addr.0)).or_default();
        if let Some(sync) = &ws.sync {
            // Reading a synchronization word acquires its release clock; the
            // access itself is atomic and never races.
            join(&mut self.clocks[pid], sync);
            return flags;
        }
        if let Some(w) = &ws.last_write {
            if w.pid != pid && w.epoch > clk(&self.clocks[pid], w.pid) {
                self.flags += 1;
                flags += 1;
                push_report(
                    &mut self.reports,
                    format!(
                        "data race: pid {pid} read {addr:?} at step {step} is concurrent with \
                         pid {}'s write at step {} (no happens-before path)",
                        w.pid, w.step
                    ),
                );
            }
        }
        let epoch = self.clocks[pid][pid];
        if let Some(r) = ws.reads.iter_mut().find(|r| r.pid == pid) {
            r.epoch = epoch;
            r.step = step;
        } else {
            ws.reads.push(Access { pid, epoch, step });
        }
        flags
    }

    /// Plain or release (`release = true`) write. A plain write to a word that
    /// is already a synchronization word is treated as a release store too
    /// (documented mixed-atomic-site behaviour — e.g. re-initializing an
    /// announcement word): flagging it would indict every recovery-time store
    /// to a CAS word.
    pub(crate) fn note_write(
        &mut self,
        arena: u64,
        addr: PAddr,
        pid: usize,
        step: u64,
        release: bool,
    ) -> u64 {
        self.ensure_pid(pid);
        self.lost.remove(&(arena, addr.0));
        let mut flags = 0;
        let ws = self.words.entry((arena, addr.0)).or_default();
        if release || ws.sync.is_some() {
            let prev = ws.sync.take().unwrap_or_default();
            join(&mut self.clocks[pid], &prev);
            ws.sync = Some(self.clocks[pid].clone());
            self.clocks[pid][pid] += 1;
        } else {
            if let Some(w) = &ws.last_write {
                if w.pid != pid && w.epoch > clk(&self.clocks[pid], w.pid) {
                    self.flags += 1;
                    flags += 1;
                    push_report(
                        &mut self.reports,
                        format!(
                            "data race: pid {pid} write to {addr:?} at step {step} is concurrent \
                             with pid {}'s write at step {} (no happens-before path)",
                            w.pid, w.step
                        ),
                    );
                }
            }
            for r in &ws.reads {
                if r.pid != pid && r.epoch > clk(&self.clocks[pid], r.pid) {
                    self.flags += 1;
                    flags += 1;
                    push_report(
                        &mut self.reports,
                        format!(
                            "data race: pid {pid} write to {addr:?} at step {step} is concurrent \
                             with pid {}'s read at step {} (no happens-before path)",
                            r.pid, r.step
                        ),
                    );
                }
            }
            let epoch = self.clocks[pid][pid];
            ws.last_write = Some(Access { pid, epoch, step });
            ws.reads.clear();
        }
        self.mark_dirty(arena, addr.0, pid, step);
        if release {
            self.expose(arena, addr.0, pid, step);
        }
        flags
    }

    /// Successful CAS or fetch-add: acquire + release on the word's clock, and
    /// a publication point — every plain word this pid left dirty on another
    /// line may now be reachable before its persist is ordered. Being a
    /// locked RMW, it first drains the pid's pending flushes (Px86: lock
    /// prefix orders earlier `clflushopt`), so a word this pid flushed — even
    /// unfenced — is durably ordered before the publication, never exposed by
    /// it.
    pub(crate) fn note_sync_write(&mut self, arena: u64, addr: PAddr, pid: usize, step: u64) -> u64 {
        self.ensure_pid(pid);
        self.note_fence(pid);
        self.lost.remove(&(arena, addr.0));
        let ws = self.words.entry((arena, addr.0)).or_default();
        let prev = ws.sync.take().unwrap_or_default();
        join(&mut self.clocks[pid], &prev);
        ws.sync = Some(self.clocks[pid].clone());
        self.clocks[pid][pid] += 1;
        self.mark_dirty(arena, addr.0, pid, step);
        self.expose(arena, addr.0, pid, step);
        0
    }

    /// Failed CAS: acquire only (the word is marked as a synchronization word
    /// either way — the site evidently treats it as an atomic). A failed
    /// `lock cmpxchg` still executes locked on x86, so it drains the pid's
    /// pending flushes just like the successful case.
    pub(crate) fn note_sync_read(&mut self, arena: u64, addr: PAddr, pid: usize, _step: u64) -> u64 {
        self.ensure_pid(pid);
        self.note_fence(pid);
        let ws = self.words.entry((arena, addr.0)).or_default();
        let sync = ws.sync.get_or_insert_with(Vec::new);
        join(&mut self.clocks[pid], sync);
        0
    }

    /// Record exposures for a publication by `pid` via `publisher`.
    fn expose(&mut self, arena: u64, publisher: u64, pid: usize, publish_step: u64) {
        let pub_line = line_base(publisher);
        let mut fresh: Vec<(u64, u64)> = Vec::new();
        for ((a, lb), words) in &self.lines {
            if *a != arena || *lb == pub_line {
                // Same-line words are exempt: the line persists in order with
                // the publisher itself (the compact-frame argument).
                continue;
            }
            for d in words {
                if d.pid == pid
                    && !self.exposed.contains(&(arena, d.addr))
                    && self
                        .words
                        .get(&(arena, d.addr))
                        .map_or(true, |w| w.sync.is_none())
                {
                    fresh.push((d.addr, d.step));
                }
            }
        }
        for (word, write_step) in fresh {
            self.exposed.insert((arena, word));
            self.exposures.push(Exposure {
                arena,
                word,
                writer: pid,
                write_step,
                publisher,
                publish_step,
                durable: false,
            });
        }
    }

    /// `flush` of a whole line by `pid`: the durable ordering is only
    /// established at `pid`'s next fence.
    pub(crate) fn note_flush(&mut self, arena: u64, line: PAddr, pid: usize) {
        if let Some(words) = self.lines.get_mut(&(arena, line.line_base().0)) {
            let bit = 1u64 << (pid % 64);
            for d in words.iter_mut() {
                d.flushed_mask |= bit;
            }
        }
    }

    /// `fence` by `pid` (also invoked by the locked-RMW hooks, which order
    /// flushes the same way): every word some line of which `pid` flushed
    /// since the word was last written is now durably ordered — its exposures
    /// resolve, and exposures it published become crash-surviving.
    pub(crate) fn note_fence(&mut self, pid: usize) {
        let bit = 1u64 << (pid % 64);
        let mut promoted: Vec<(u64, u64)> = Vec::new();
        for ((arena, _), words) in self.lines.iter_mut() {
            words.retain(|d| {
                if d.flushed_mask & bit != 0 {
                    promoted.push((*arena, d.addr));
                    false
                } else {
                    true
                }
            });
        }
        self.lines.retain(|_, v| !v.is_empty());
        for (arena, word) in promoted {
            self.exposed.remove(&(arena, word));
            self.exposures.retain(|e| !(e.arena == arena && e.word == word));
            for e in self.exposures.iter_mut() {
                if e.arena == arena && e.publisher == word {
                    e.durable = true;
                }
            }
        }
    }

    /// Full-system crash of `arena`: a global happens-before barrier (recovery
    /// is ordered after everything pre-crash), plus the cross-failure
    /// bookkeeping — exposures whose publisher may have persisted turn into
    /// `lost` words whose next plain read is flagged; exposures whose
    /// publisher certainly rolled back are dropped (the word is unreachable).
    pub(crate) fn note_system_crash(&mut self, arena: u64) {
        self.barrier();
        let mut kept: Vec<Exposure> = Vec::new();
        for e in self.exposures.drain(..) {
            if e.arena != arena {
                kept.push(e);
                continue;
            }
            let pub_flushed = self
                .lines
                .get(&(arena, line_base(e.publisher)))
                .is_some_and(|ws| ws.iter().any(|d| d.addr == e.publisher && d.flushed_mask != 0));
            if e.durable || pub_flushed {
                self.lost.insert(
                    (arena, e.word),
                    format!(
                        "pid {} wrote it at step {} and published it via {:?} at step {} without \
                         flush+fence ordering the write before the crash",
                        e.writer,
                        e.write_step,
                        PAddr(e.publisher),
                        e.publish_step
                    ),
                );
            }
        }
        self.exposures = kept;
        self.exposed.retain(|(a, _)| *a != arena);
        self.lines.retain(|(a, _), _| *a != arena);
    }

    /// `persist_everything` on `arena`: all state durable, nothing dirty,
    /// nothing lost; also a global barrier (it is a quiescent harness call).
    pub(crate) fn note_persist_all(&mut self, arena: u64) {
        self.barrier();
        self.lines.retain(|(a, _), _| *a != arena);
        self.exposures.retain(|e| e.arena != arena);
        self.exposed.retain(|(a, _)| *a != arena);
        self.lost.retain(|(a, _), _| *a != arena);
    }

    /// Join every clock into every other and advance each pid past the join:
    /// pre-barrier accesses are ordered before all post-barrier accesses,
    /// while post-barrier accesses by different pids stay mutually unordered.
    fn barrier(&mut self) {
        let mut joined: Vec<u64> = Vec::new();
        for c in &self.clocks {
            join(&mut joined, c);
        }
        for (q, c) in self.clocks.iter_mut().enumerate() {
            if clk(c, q) != 0 {
                let own = clk(&joined, q);
                c.clear();
                c.extend_from_slice(&joined);
                if c.len() <= q {
                    c.resize(q + 1, 0);
                }
                c[q] = own + 1;
            }
        }
    }
}

/// The machine-level happens-before analyzer: one per [`PMem`](crate::PMem),
/// armed via `DF_HB=1` at machine construction or [`arm`](HbAnalyzer::arm).
///
/// All state sits behind one mutex which the armed instruction paths hold
/// around the actual memory access, so the analyzer observes the linearization
/// of the armed accesses exactly as it executed.
pub struct HbAnalyzer {
    armed: AtomicBool,
    inner: Mutex<HbInner>,
}

impl Default for HbAnalyzer {
    fn default() -> Self {
        HbAnalyzer::new()
    }
}

impl HbAnalyzer {
    /// A disarmed analyzer with empty state.
    pub fn new() -> HbAnalyzer {
        HbAnalyzer {
            armed: AtomicBool::new(false),
            inner: Mutex::new(HbInner::default()),
        }
    }

    /// Arm the analyzer. Thread handles mirror the armed state into their
    /// packed fast-flag byte at creation; call
    /// [`refresh_hb`](crate::PThread::refresh_hb) on handles that already
    /// exist.
    pub fn arm(&self) {
        // SeqCst: arming totally orders against the dispatch checks in every
        // thread handle so an armed run never mixes tracked and untracked
        // instructions from the same handle creation onwards.
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Disarm the analyzer (existing handles need
    /// [`refresh_hb`](crate::PThread::refresh_hb) to notice).
    pub fn disarm(&self) {
        // SeqCst: pairs with `arm` — one total order over the toggles.
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Whether the analyzer is armed.
    pub fn is_armed(&self) -> bool {
        // SeqCst: reads the same total order the arm/disarm stores write.
        self.armed.load(Ordering::SeqCst)
    }

    /// Total flags raised so far (data races + cross-failure races).
    pub fn flags(&self) -> u64 {
        self.inner.lock().flags
    }

    /// Drain the human-readable reports (capped at 32; the counter is not).
    pub fn take_reports(&self) -> Vec<String> {
        std::mem::take(&mut self.inner.lock().reports)
    }

    pub(crate) fn locked(&self) -> MutexGuard<'_, HbInner> {
        self.inner.lock()
    }
}

impl std::fmt::Debug for HbAnalyzer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HbAnalyzer")
            .field("armed", &self.is_armed())
            .field("flags", &self.flags())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: u64 = 1; // arena id used throughout

    fn addr(raw: u64) -> PAddr {
        PAddr(raw)
    }

    #[test]
    fn unsynchronized_write_read_is_a_race() {
        let mut hb = HbInner::default();
        hb.on_thread(0);
        hb.on_thread(1);
        assert_eq!(hb.note_write(A, addr(64), 0, 1, false), 0);
        assert_eq!(hb.note_read(A, addr(64), 1, 1), 1, "{:?}", hb.reports);
        assert!(hb.reports[0].contains("data race"), "{:?}", hb.reports);
    }

    #[test]
    fn cas_handoff_orders_the_plain_word() {
        let mut hb = HbInner::default();
        hb.on_thread(0);
        hb.on_thread(1);
        // pid 0: write data, release via CAS word; pid 1: acquire, read data.
        assert_eq!(hb.note_write(A, addr(64), 0, 1, false), 0);
        hb.note_sync_write(A, addr(128), 0, 2);
        assert_eq!(hb.note_read(A, addr(128), 1, 1), 0);
        assert_eq!(hb.note_read(A, addr(64), 1, 2), 0, "{:?}", hb.reports);
        assert_eq!(hb.flags, 0);
    }

    #[test]
    fn release_write_orders_like_a_cas() {
        let mut hb = HbInner::default();
        hb.on_thread(0);
        hb.on_thread(1);
        hb.note_write(A, addr(64), 0, 1, false);
        hb.note_write(A, addr(128), 0, 2, true); // write_release
        assert_eq!(hb.note_read(A, addr(128), 1, 1), 0);
        assert_eq!(hb.note_read(A, addr(64), 1, 2), 0, "{:?}", hb.reports);
    }

    #[test]
    fn read_then_concurrent_write_is_a_race() {
        let mut hb = HbInner::default();
        hb.on_thread(0);
        hb.on_thread(1);
        assert_eq!(hb.note_read(A, addr(64), 0, 1), 0);
        assert_eq!(hb.note_write(A, addr(64), 1, 1, false), 1, "{:?}", hb.reports);
    }

    #[test]
    fn handle_creation_edge_orders_setup_before_spawn() {
        let mut hb = HbInner::default();
        hb.on_thread(0);
        hb.note_write(A, addr(64), 0, 1, false);
        // pid 1 is created after the setup write: creation joins all clocks.
        hb.on_thread(1);
        assert_eq!(hb.note_read(A, addr(64), 1, 1), 0, "{:?}", hb.reports);
        // But pid 0's *later* writes stay unordered w.r.t. pid 1.
        hb.note_write(A, addr(72), 0, 2, false);
        assert_eq!(hb.note_read(A, addr(72), 1, 2), 1, "{:?}", hb.reports);
    }

    #[test]
    fn publish_of_unordered_word_is_lost_at_crash_and_flagged_on_read() {
        let mut hb = HbInner::default();
        hb.on_thread(0);
        // write the record, publish it, and durably order only the publisher.
        hb.note_write(A, addr(64), 0, 1, false);
        hb.note_sync_write(A, addr(128), 0, 2);
        hb.note_flush(A, addr(128), 0);
        hb.note_fence(0);
        assert_eq!(hb.exposures.len(), 1);
        assert!(hb.exposures[0].durable);
        hb.note_system_crash(A);
        assert!(hb.lost.contains_key(&(A, 64)));
        assert_eq!(hb.note_read(A, addr(64), 0, 1), 1);
        assert!(hb.reports.last().unwrap().contains("cross-failure race"));
        // The flag is one-shot: the word is consumed from the lost set.
        assert_eq!(hb.note_read(A, addr(64), 0, 2), 0);
    }

    #[test]
    fn flush_fence_before_publish_leaves_nothing_exposed() {
        let mut hb = HbInner::default();
        hb.on_thread(0);
        hb.note_write(A, addr(64), 0, 1, false);
        hb.note_flush(A, addr(64), 0);
        hb.note_fence(0);
        hb.note_sync_write(A, addr(128), 0, 2);
        assert!(hb.exposures.is_empty());
        hb.note_flush(A, addr(128), 0);
        hb.note_fence(0);
        hb.note_system_crash(A);
        assert_eq!(hb.note_read(A, addr(64), 0, 3), 0, "{:?}", hb.reports);
    }

    #[test]
    fn flush_without_fence_before_release_store_publish_is_still_exposed() {
        // The bug class the eager-persist simulator cannot show: clflushopt
        // issued, no sfence, then publication by a *store* (a plain `mov`
        // orders nothing) — and the crash lands after the publisher's own
        // durable ordering.
        let mut hb = HbInner::default();
        hb.on_thread(0);
        hb.note_write(A, addr(64), 0, 1, false);
        hb.note_flush(A, addr(64), 0); // no fence
        hb.note_write(A, addr(128), 0, 2, true); // write_release publishes
        assert_eq!(hb.exposures.len(), 1, "unfenced flush must not resolve the exposure");
        hb.note_flush(A, addr(128), 0); // publisher possibly durable...
        // ...and the crash lands before the eventual fence (which would have
        // drained the record's flush as well and closed the window).
        hb.note_system_crash(A);
        assert_eq!(hb.note_read(A, addr(64), 0, 3), 1, "{:?}", hb.reports);
    }

    #[test]
    fn a_locked_cas_orders_pending_flushes_like_a_fence() {
        // Px86: `flush(line); cas(...)` with no fence is the paper's §9
        // elision — the lock prefix drains the flushopt, so the flushed word
        // is durably ordered before the publication.
        let mut hb = HbInner::default();
        hb.on_thread(0);
        hb.note_write(A, addr(64), 0, 1, false);
        hb.note_flush(A, addr(64), 0); // no fence...
        hb.note_sync_write(A, addr(128), 0, 2); // ...the CAS orders it
        assert!(hb.exposures.is_empty(), "flush + CAS must resolve the dirty word");
        hb.note_flush(A, addr(128), 0);
        hb.note_system_crash(A);
        assert_eq!(hb.note_read(A, addr(64), 0, 3), 0, "{:?}", hb.reports);
    }

    #[test]
    fn a_failed_cas_also_orders_pending_flushes() {
        // `lock cmpxchg` executes locked whether or not the compare succeeds.
        let mut hb = HbInner::default();
        hb.on_thread(0);
        hb.note_write(A, addr(64), 0, 1, false);
        hb.note_flush(A, addr(64), 0);
        hb.note_sync_read(A, addr(128), 0, 2); // failed CAS on another word
        // A later release-store publication finds the word already ordered.
        hb.note_write(A, addr(192), 0, 3, true);
        assert!(hb.exposures.is_empty(), "the failed CAS drained the flush");
    }

    #[test]
    fn an_unflushed_word_is_still_exposed_by_a_cas_publication() {
        // The locked-RMW rule only orders *issued* flushes: publishing a word
        // that was never flushed at all remains mutant 1's bug.
        let mut hb = HbInner::default();
        hb.on_thread(0);
        hb.note_write(A, addr(64), 0, 1, false); // never flushed
        hb.note_sync_write(A, addr(128), 0, 2);
        assert_eq!(hb.exposures.len(), 1);
        hb.note_flush(A, addr(128), 0);
        hb.note_fence(0);
        hb.note_system_crash(A);
        assert_eq!(hb.note_read(A, addr(64), 0, 3), 1, "{:?}", hb.reports);
    }

    #[test]
    fn unflushed_publisher_rolls_back_and_drops_the_exposure() {
        let mut hb = HbInner::default();
        hb.on_thread(0);
        hb.note_write(A, addr(64), 0, 1, false);
        hb.note_sync_write(A, addr(128), 0, 2);
        assert_eq!(hb.exposures.len(), 1);
        // Crash before anything is flushed: the publication itself is gone.
        hb.note_system_crash(A);
        assert!(hb.lost.is_empty());
        assert_eq!(hb.note_read(A, addr(64), 0, 3), 0, "{:?}", hb.reports);
    }

    #[test]
    fn same_line_publication_is_exempt() {
        // Compact-frame shape: user words and the control word share a line,
        // which persists atomically and in order.
        let mut hb = HbInner::default();
        hb.on_thread(0);
        hb.note_write(A, addr(64), 0, 1, false);
        hb.note_write(A, addr(65), 0, 2, true); // release on the same line
        assert!(hb.exposures.is_empty());
    }

    #[test]
    fn sync_words_are_not_exposed_by_a_later_publish() {
        // A dirty CAS target is not "data published before its flush": its
        // un-flushed publication rolls back at a crash (checked separately).
        let mut hb = HbInner::default();
        hb.on_thread(0);
        hb.note_sync_write(A, addr(64), 0, 1);
        hb.note_sync_write(A, addr(128), 0, 2);
        assert!(hb.exposures.is_empty());
    }

    #[test]
    fn crash_is_a_global_barrier() {
        let mut hb = HbInner::default();
        hb.on_thread(0);
        hb.on_thread(1);
        hb.note_write(A, addr(64), 0, 1, false);
        hb.note_system_crash(A);
        // Post-crash recovery by the other pid reads the word: ordered.
        assert_eq!(hb.note_read(A, addr(64), 1, 1), 0, "{:?}", hb.reports);
        // Post-crash accesses by different pids are still unordered.
        hb.note_write(A, addr(72), 0, 2, false);
        assert_eq!(hb.note_read(A, addr(72), 1, 2), 1, "{:?}", hb.reports);
    }

    #[test]
    fn persist_all_clears_arena_state() {
        let mut hb = HbInner::default();
        hb.on_thread(0);
        hb.note_write(A, addr(64), 0, 1, false);
        hb.note_sync_write(A, addr(128), 0, 2);
        hb.note_persist_all(A);
        assert!(hb.lines.is_empty());
        assert!(hb.exposures.is_empty());
        hb.note_system_crash(A);
        assert_eq!(hb.note_read(A, addr(64), 0, 3), 0, "{:?}", hb.reports);
    }

    #[test]
    fn state_is_keyed_by_arena() {
        let mut hb = HbInner::default();
        hb.on_thread(0);
        hb.note_write(A, addr(64), 0, 1, false);
        hb.note_sync_write(A, addr(128), 0, 2);
        hb.note_flush(A, addr(128), 0);
        hb.note_fence(0);
        // A crash of a *different* arena must not consume arena A's state.
        hb.note_system_crash(A + 1);
        assert!(hb.lost.is_empty());
        assert_eq!(hb.exposures.len(), 1);
        hb.note_system_crash(A);
        assert!(hb.lost.contains_key(&(A, 64)));
    }

    #[test]
    fn report_cap_does_not_stop_the_counter() {
        let mut hb = HbInner::default();
        hb.on_thread(0);
        hb.on_thread(1);
        for i in 0..(MAX_REPORTS as u64 + 8) {
            hb.note_write(A, addr(64 + i), 0, i, false);
            hb.note_read(A, addr(64 + i), 1, i);
        }
        assert_eq!(hb.reports.len(), MAX_REPORTS);
        assert_eq!(hb.flags, MAX_REPORTS as u64 + 8);
    }
}
