//! Seeded-mutant validation for the happens-before analyzer (`pmem::hb`).
//!
//! Each test pair drives a small protocol sketch twice: once with a seeded
//! discipline violation (modelled on real bug shapes in the transformed
//! algorithms) and once with the one-line fix. The analyzer must flag the
//! mutant **at the faulting instruction** — the report names the pid, the
//! word and the step of the access that consumed the broken ordering — and
//! the fixed twin must run clean. Everything here is single-schedule and
//! deterministic: the flags depend only on the instruction sequence.
//!
//! The three mutants mirror the bug classes the dfck sweeps could silently
//! miss (the simulator persists eagerly at the flush, so a skipped `fence`
//! never corrupts replayed state — only the ordering analyzer can see it):
//!
//! 1. **Dropped announcement flush** — a record is published by CAS and the
//!    pointer persisted, but the record itself was never flushed (the PR 4
//!    auditor's class, now caught as an ordering violation).
//! 2. **Relaxed-where-release store** — a plain store publishes a data word
//!    to a concurrent reader with no release annotation: a data race.
//! 3. **Skipped fence before a publishing store** — the record *was* flushed
//!    (`clflushopt`) but the `sfence` is missing, so the flush is not ordered
//!    before the publication. The publisher here is a release *store*: a
//!    plain `mov` on x86, which orders nothing. (Publishing by CAS instead
//!    would be the paper's §9 fence elision and is clean — the lock prefix
//!    drains the pending flush; see
//!    `a_cas_publication_makes_the_skipped_fence_sound` below.)

use pmem::{MemConfig, Mode, PMem, LINE_WORDS};

fn machine(threads: usize) -> PMem {
    let mem = PMem::new(MemConfig::new(threads).mode(Mode::SharedCache));
    mem.hb().arm();
    mem
}

// ----- mutant 1: dropped announcement flush --------------------------------

fn announcement_protocol(persist_announcement: bool) -> (u64, Vec<String>, String) {
    let mem = machine(1);
    let t = mem.thread(0);
    let ann = t.alloc(LINE_WORDS); // the "announcement" record
    let x = t.alloc(LINE_WORDS); // the word that publishes it
    t.write(ann, 0xA11);
    if persist_announcement {
        t.persist(ann); // the fix: durable before reachable
    }
    assert!(t.cas(x, 0, ann.to_raw()));
    t.persist(x); // the pointer is durably ordered either way
    mem.crash_all();
    let _ = t.read(ann); // recovery consumes the record
    let fault = format!("pid 0 read {ann:?} at step {}", t.step_count());
    (mem.hb().flags(), mem.hb().take_reports(), fault)
}

#[test]
fn dropped_announcement_flush_is_flagged_at_the_recovery_read() {
    let (flags, reports, fault) = announcement_protocol(false);
    assert_eq!(flags, 1, "{reports:?}");
    assert!(reports[0].contains("cross-failure race"), "{reports:?}");
    assert!(reports[0].contains(&fault), "report {reports:?} does not name the faulting instruction {fault:?}");
}

#[test]
fn persisting_the_announcement_before_publish_unflags_it() {
    let (flags, reports, _) = announcement_protocol(true);
    assert_eq!(flags, 0, "{reports:?}");
}

// ----- mutant 2: relaxed store where a release is required -----------------

fn publication_protocol(release: bool) -> (u64, Vec<String>, String) {
    let mem = machine(2);
    let t0 = mem.thread(0);
    let t1 = mem.thread(1);
    let data = t0.alloc(LINE_WORDS);
    let ready = t0.alloc(LINE_WORDS);
    t0.write(data, 7);
    if release {
        t0.write_release(ready, 1); // the fix: an annotated release store
    } else {
        t0.write(ready, 1); // the mutant: plain store publishes `data`
    }
    assert_eq!(t1.read(ready), 1);
    let fault = format!("pid 1 read {ready:?} at step {}", t1.step_count());
    assert_eq!(t1.read(data), 7);
    (mem.hb().flags(), mem.hb().take_reports(), fault)
}

#[test]
fn relaxed_publication_store_is_flagged_at_the_consuming_read() {
    let (flags, reports, fault) = publication_protocol(false);
    // Both the flag read and the dependent data read race.
    assert_eq!(flags, 2, "{reports:?}");
    assert!(reports[0].contains("data race"), "{reports:?}");
    assert!(reports[0].contains(&fault), "report {reports:?} does not name the faulting instruction {fault:?}");
}

#[test]
fn a_release_annotation_on_the_publication_store_unflags_it() {
    let (flags, reports, _) = publication_protocol(true);
    assert_eq!(flags, 0, "{reports:?}");
}

// ----- mutant 3: flush without fence before a publishing store -------------

fn fence_protocol(fence_before_publish: bool) -> (u64, Vec<String>, String) {
    let mem = machine(1);
    let t = mem.thread(0);
    let rec = t.alloc(LINE_WORDS);
    let x = t.alloc(LINE_WORDS);
    t.write(rec, 0xEC);
    t.flush(rec); // clflushopt issued either way...
    if fence_before_publish {
        t.fence(); // ...but only the fix orders it before the publication
    }
    t.write_release(x, rec.to_raw()); // a plain `mov`: orders nothing
    t.flush(x);
    // The crash lands before any fence: the simulator's eager persist keeps
    // both words, but nothing *ordered* the record before the pointer.
    mem.crash_all();
    let _ = t.read(rec);
    let fault = format!("pid 0 read {rec:?} at step {}", t.step_count());
    (mem.hb().flags(), mem.hb().take_reports(), fault)
}

#[test]
fn skipped_fence_before_publish_is_flagged_at_the_recovery_read() {
    let (flags, reports, fault) = fence_protocol(false);
    assert_eq!(flags, 1, "{reports:?}");
    assert!(reports[0].contains("cross-failure race"), "{reports:?}");
    assert!(reports[0].contains(&fault), "report {reports:?} does not name the faulting instruction {fault:?}");
}

#[test]
fn fencing_before_the_publishing_store_unflags_it() {
    let (flags, reports, _) = fence_protocol(true);
    assert_eq!(flags, 0, "{reports:?}");
}

#[test]
fn a_cas_publication_makes_the_skipped_fence_sound() {
    // The same skipped-fence sequence, but published by a locked CAS: the
    // lock prefix drains the earlier `clflushopt` (Px86), which is exactly
    // the fence elision the `-Opt` variants and the log queue rely on.
    let mem = machine(1);
    let t = mem.thread(0);
    let rec = t.alloc(LINE_WORDS);
    let x = t.alloc(LINE_WORDS);
    t.write(rec, 0xEC);
    t.flush(rec); // no fence...
    assert!(t.cas(x, 0, rec.to_raw())); // ...the CAS orders the flush
    t.flush(x);
    mem.crash_all();
    let _ = t.read(rec);
    let reports = mem.hb().take_reports();
    assert_eq!(mem.hb().flags(), 0, "{reports:?}");
}
