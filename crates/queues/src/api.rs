//! Common queue interface and durability configuration.

/// How a queue achieves durability in the shared-cache model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Durability {
    /// No flushes issued by the queue itself. Correct in the private-cache model,
    /// or when the thread options apply the Izraelevitz construction (flush after
    /// every shared access), or when durability is simply not required (the plain
    /// MSQ baseline of Figure 7).
    None,
    /// Hand-placed flushes à la Friedman et al.'s durable queue — the configuration
    /// compared in Figure 6.
    Manual,
}

impl Durability {
    /// Whether the queue should issue explicit flushes.
    pub fn manual(self) -> bool {
        matches!(self, Durability::Manual)
    }
}

/// The uniform face every queue variant presents to the benchmark harness, the
/// examples and the integration tests.
///
/// A handle is per-thread (it owns the thread's capsule runtime / operation log) and
/// must only be used by the thread that created it.
pub trait QueueHandle {
    /// Append `value` to the tail of the queue.
    fn enqueue(&mut self, value: u64);
    /// Remove and return the value at the head of the queue, or `None` if empty.
    fn dequeue(&mut self) -> Option<u64>;

    /// Dequeue until the queue is empty, returning the values in FIFO order.
    ///
    /// This is the uniform history hook the exhaustive crash-point sweeper
    /// (`dfck` in the `bench` crate) uses to read off the final queue state of
    /// every variant after a crash-and-recovery replay: the drained sequence plus
    /// the per-operation return values form the history its exactly-once /
    /// durable-linearizability oracle checks. Quiescent use only — like `dequeue`
    /// it is per-thread and the result is only meaningful once concurrent
    /// operations have stopped.
    fn drain(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(v) = self.dequeue() {
            out.push(v);
        }
        out
    }

    /// [`drain`](QueueHandle::drain), but stop after at most `max` dequeues even
    /// if the queue still reports elements.
    ///
    /// An unbounded drain trusts the queue's next-pointer chain to be acyclic; a
    /// recovery bug that splices a node behind itself would make [`drain`]
    /// (and therefore a whole `dfck` sweep) spin forever instead of failing.
    /// Oracles that know an upper bound on the surviving elements (prefill plus
    /// every enqueue the replay could have applied) call this with `bound + 1`:
    /// a result longer than `bound` is machine-checkable proof of a corrupted
    /// chain and is reported as an oracle violation, never as a hang.
    fn drain_up_to(&mut self, max: usize) -> Vec<u64> {
        let mut out = Vec::new();
        while out.len() < max {
            match self.dequeue() {
                Some(v) => out.push(v),
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durability_flags() {
        assert!(!Durability::None.manual());
        assert!(Durability::Manual.manual());
    }

    #[test]
    fn drain_default_impl_empties_in_fifo_order() {
        struct VecQueue(std::collections::VecDeque<u64>);
        impl QueueHandle for VecQueue {
            fn enqueue(&mut self, value: u64) {
                self.0.push_back(value);
            }
            fn dequeue(&mut self) -> Option<u64> {
                self.0.pop_front()
            }
        }
        let mut q = VecQueue(std::collections::VecDeque::new());
        for i in 0..5 {
            q.enqueue(i);
        }
        assert_eq!(q.drain(), vec![0, 1, 2, 3, 4]);
        assert_eq!(q.drain(), Vec::<u64>::new());
    }

    #[test]
    fn drain_up_to_stops_at_the_bound_and_at_emptiness() {
        struct Cyclic(u64);
        impl QueueHandle for Cyclic {
            fn enqueue(&mut self, _value: u64) {}
            fn dequeue(&mut self) -> Option<u64> {
                // A corrupted chain: dequeues never run dry.
                self.0 += 1;
                Some(self.0)
            }
        }
        let mut endless = Cyclic(0);
        assert_eq!(endless.drain_up_to(4), vec![1, 2, 3, 4]);

        struct Two(Vec<u64>);
        impl QueueHandle for Two {
            fn enqueue(&mut self, value: u64) {
                self.0.push(value);
            }
            fn dequeue(&mut self) -> Option<u64> {
                if self.0.is_empty() {
                    None
                } else {
                    Some(self.0.remove(0))
                }
            }
        }
        let mut q = Two(vec![7, 8]);
        assert_eq!(q.drain_up_to(10), vec![7, 8], "stops early when empty");
    }
}
