//! Common queue interface and durability configuration.

/// How a queue achieves durability in the shared-cache model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Durability {
    /// No flushes issued by the queue itself. Correct in the private-cache model,
    /// or when the thread options apply the Izraelevitz construction (flush after
    /// every shared access), or when durability is simply not required (the plain
    /// MSQ baseline of Figure 7).
    None,
    /// Hand-placed flushes à la Friedman et al.'s durable queue — the configuration
    /// compared in Figure 6.
    Manual,
}

impl Durability {
    /// Whether the queue should issue explicit flushes.
    pub fn manual(self) -> bool {
        matches!(self, Durability::Manual)
    }
}

/// The uniform face every queue variant presents to the benchmark harness, the
/// examples and the integration tests.
///
/// A handle is per-thread (it owns the thread's capsule runtime / operation log) and
/// must only be used by the thread that created it.
pub trait QueueHandle {
    /// Append `value` to the tail of the queue.
    fn enqueue(&mut self, value: u64);
    /// Remove and return the value at the head of the queue, or `None` if empty.
    fn dequeue(&mut self) -> Option<u64>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durability_flags() {
        assert!(!Durability::None.manual());
        assert!(Durability::Manual.manual());
    }
}
