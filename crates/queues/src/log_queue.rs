//! The LogQueue: a hand-tuned durable and *detectable* Michael–Scott queue in the
//! style of Friedman, Herlihy, Marathe and Petrank (PPoPP 2018) — the specialised
//! competitor of Figure 6.
//!
//! The queue itself is the plain MSQ with hand-placed flushes (flush the new node
//! before publishing it, flush the `next` pointer after linking, flush head/tail
//! after swinging them — the paper's variant flushes both for faster recovery and
//! drops the return-value array). Detectability comes from a per-thread *operation
//! log*: before an operation starts, the thread persists a log entry describing it;
//! after it completes, the entry is marked done together with the result. After a
//! crash, [`LogQueue::recover`] inspects the log and, if the interrupted operation
//! is not marked done, determines whether it nevertheless took effect by traversing
//! the queue — which is why LogQueue recovery is O(queue length) while the
//! capsule-based transformations recover in constant time (the comparison in the
//! supplementary recovery-delay table).

use pmem::{PAddr, PThread, LINE_WORDS};

use crate::api::QueueHandle;
use crate::node::{alloc_node, dequeuer_addr, next_addr, value_addr};

// Per-thread log entry layout (one cache line per thread).
const LOG_SEQ: u64 = 0; // operation sequence number
const LOG_KIND: u64 = 1; // 0 = none, 1 = enqueue, 2 = dequeue
const LOG_NODE: u64 = 2; // enqueue: the node being inserted
const LOG_DONE: u64 = 3; // 1 once the operation completed
const LOG_RESULT: u64 = 4; // dequeue: encoded result (Option<u64> as (v<<1)|1, 0 = None)

/// The value a dequeuer CASes into a claimed node's `dequeuer` word: the claiming
/// operation's sequence number in the high bits, `pid + 1` in the low 16. Non-zero
/// by construction (so "unclaimed" stays the all-zero word), and unique per
/// (thread, operation) so recovery never mistakes an earlier operation's claim for
/// the interrupted one.
fn claim_tag(pid: usize, seq: u64) -> u64 {
    debug_assert!(pid < (1 << 16) - 1);
    (seq << 16) | (pid as u64 + 1)
}

/// What the recovery procedure concluded about a thread's interrupted operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveredOp {
    /// No operation was in flight (or it had already been marked done).
    None,
    /// The interrupted enqueue did take effect (its node is reachable).
    EnqueueApplied,
    /// The interrupted enqueue did not take effect; it is safe to re-run it.
    EnqueueNotApplied,
    /// The interrupted dequeue took effect and returned this value.
    DequeueApplied(u64),
    /// The interrupted dequeue did not take effect.
    DequeueNotApplied,
}

/// The shared, persistent part of the LogQueue.
#[derive(Clone, Copy, Debug)]
pub struct LogQueue {
    head: PAddr,
    tail: PAddr,
    log_base: PAddr,
    nprocs: usize,
}

impl LogQueue {
    /// Create an empty queue with a per-thread operation log for `nprocs` threads.
    pub fn new(thread: &PThread<'_>, nprocs: usize) -> LogQueue {
        let sentinel = alloc_node(thread, 0);
        let head = thread.alloc(1);
        let tail = thread.alloc(1);
        thread.write(head, sentinel.to_raw());
        thread.write(tail, sentinel.to_raw());
        // Line-aligned so each pid's five-word entry sits inside one cache
        // line: `log_begin`/`log_finish` rely on "one line, one flush" for the
        // entry to be torn-free under full-system crashes. A plain `alloc` of
        // more than one line may start mid-line, splitting every entry across
        // two lines (sequence number durable, kind/done rolled back — exactly
        // the torn state the driver protocol assumes impossible).
        let log_base = thread.alloc_aligned(nprocs as u64 * LINE_WORDS);
        thread.persist(sentinel);
        thread.persist(head);
        thread.persist(tail);
        LogQueue {
            head,
            tail,
            log_base,
            nprocs,
        }
    }

    fn log_addr(&self, pid: usize, field: u64) -> PAddr {
        assert!(pid < self.nprocs);
        self.log_base.offset(pid as u64 * LINE_WORDS + field)
    }

    /// Create the calling thread's handle.
    pub fn handle<'q, 't, 'm>(&'q self, thread: &'t PThread<'m>) -> LogQueueHandle<'q, 't, 'm> {
        LogQueueHandle { queue: self, thread }
    }

    /// Count elements reachable from the head (diagnostic; not linearizable).
    pub fn len(&self, thread: &PThread<'_>) -> usize {
        let mut count = 0;
        let mut node = PAddr::from_raw(thread.read(self.head));
        loop {
            let next = PAddr::from_raw(thread.read(next_addr(node)));
            if next.is_null() {
                break;
            }
            count += 1;
            node = next;
        }
        count
    }

    /// Whether the queue is empty (same caveats as [`len`](Self::len)).
    pub fn is_empty(&self, thread: &PThread<'_>) -> bool {
        self.len(thread) == 0
    }

    /// The operation sequence number currently recorded in `thread`'s log entry.
    ///
    /// The crash-replay driver protocol (used by the `dfck` sweeper): read this
    /// *before* starting an operation; after a crash, if it is unchanged the
    /// interrupted operation never completed its `log_begin` and therefore never
    /// touched the queue — re-run it from scratch without consulting
    /// [`recover`](Self::recover) (whose verdict could be computed from a torn
    /// record). If it advanced, the log record is fully this operation's and the
    /// recovery verdict is reliable; [`RecoveredOp::None`] then means the
    /// operation *completed* (its log entry was marked done) and a dequeue's
    /// return value is available from [`logged_result`](Self::logged_result).
    pub fn logged_seq(&self, thread: &PThread<'_>) -> u64 {
        thread.read(self.log_addr(thread.pid(), LOG_SEQ))
    }

    /// The completed-operation result recorded in `thread`'s log entry (only
    /// meaningful for a dequeue whose log entry is marked done): `None` for an
    /// empty-queue dequeue, `Some(v)` for a dequeue that returned `v`.
    pub fn logged_result(&self, thread: &PThread<'_>) -> Option<u64> {
        let word = thread.read(self.log_addr(thread.pid(), LOG_RESULT));
        if word & 1 == 0 {
            None
        } else {
            Some(word >> 1)
        }
    }

    /// Post-crash recovery for one thread: decide whether its logged, unfinished
    /// operation took effect. For an enqueue this requires traversing the queue to
    /// look for the logged node, so the cost grows with the queue length.
    pub fn recover(&self, thread: &PThread<'_>) -> RecoveredOp {
        thread.begin_recovery();
        let pid = thread.pid();
        let kind = thread.read(self.log_addr(pid, LOG_KIND));
        let done = thread.read(self.log_addr(pid, LOG_DONE));
        let outcome = if kind == 0 || done == 1 {
            RecoveredOp::None
        } else if kind == 1 {
            // Enqueue: applied iff the logged node is reachable from the head (or is
            // the tail). Walk the whole queue.
            let node = PAddr::from_raw(thread.read(self.log_addr(pid, LOG_NODE)));
            let mut cur = PAddr::from_raw(thread.read(self.head));
            let mut found = false;
            loop {
                if cur == node {
                    found = true;
                    break;
                }
                let next = PAddr::from_raw(thread.read(next_addr(cur)));
                if next.is_null() {
                    break;
                }
                cur = next;
            }
            if found {
                RecoveredOp::EnqueueApplied
            } else {
                RecoveredOp::EnqueueNotApplied
            }
        } else {
            // Dequeue: applied iff the node this operation logged as its claim
            // candidate carries *this operation's* claim tag. The tag encodes the
            // operation sequence number as well as the pid (Friedman et al.'s
            // deqThreadID trick): a bare pid marker would make a node claimed by
            // one of this thread's *earlier*, already-completed dequeues look
            // like a successful claim of the interrupted one, double-returning
            // its value. The candidate is logged *before* the claim CAS, so the
            // log always names the node whose dequeuer word is the verdict.
            let node = PAddr::from_raw(thread.read(self.log_addr(pid, LOG_NODE)));
            let seq = thread.read(self.log_addr(pid, LOG_SEQ));
            if !node.is_null() && thread.read(dequeuer_addr(node)) == claim_tag(pid, seq) {
                RecoveredOp::DequeueApplied(thread.read(value_addr(node)))
            } else {
                RecoveredOp::DequeueNotApplied
            }
        };
        thread.end_recovery();
        outcome
    }
}

/// Per-thread handle for the LogQueue.
#[derive(Debug)]
pub struct LogQueueHandle<'q, 't, 'm> {
    queue: &'q LogQueue,
    thread: &'t PThread<'m>,
}

impl LogQueueHandle<'_, '_, '_> {
    /// Persist the operation's log record; returns the operation's sequence
    /// number (so callers need not re-read it).
    fn log_begin(&self, kind: u64, node: PAddr) -> u64 {
        let t = self.thread;
        let q = self.queue;
        let pid = t.pid();
        let seq = t.read(q.log_addr(pid, LOG_SEQ)) + 1;
        // The sequence number is written *last*: a crash anywhere inside this
        // function may leave the other fields torn (mixing this record with the
        // previous operation's), but then the old sequence number is still in
        // place, and "seq unchanged ⇒ the operation never began" is the invariant
        // the post-crash driver protocol relies on (see [`LogQueue::logged_seq`]).
        // Once the sequence number has advanced, every other field belongs fully
        // to this operation and [`LogQueue::recover`]'s verdict is reliable.
        t.write(q.log_addr(pid, LOG_KIND), kind);
        t.write(q.log_addr(pid, LOG_NODE), node.to_raw());
        t.write(q.log_addr(pid, LOG_DONE), 0);
        t.write(q.log_addr(pid, LOG_SEQ), seq);
        // One line, one flush, one fence.
        t.persist(q.log_addr(pid, 0));
        seq
    }

    fn log_finish(&self, result: u64) {
        let t = self.thread;
        let q = self.queue;
        let pid = t.pid();
        t.write(q.log_addr(pid, LOG_RESULT), result);
        t.write(q.log_addr(pid, LOG_DONE), 1);
        t.persist(q.log_addr(pid, 0));
    }
}

impl QueueHandle for LogQueueHandle<'_, '_, '_> {
    fn enqueue(&mut self, value: u64) {
        let t = self.thread;
        let q = self.queue;
        let node = alloc_node(t, value);
        t.persist(node);
        self.log_begin(1, node);
        loop {
            let last = PAddr::from_raw(t.read(q.tail));
            let next = PAddr::from_raw(t.read(next_addr(last)));
            if last.to_raw() != t.read(q.tail) {
                continue;
            }
            if next.is_null() {
                if t.cas(next_addr(last), 0, node.to_raw()) {
                    t.persist(next_addr(last));
                    let _ = t.cas(q.tail, last.to_raw(), node.to_raw());
                    t.flush(q.tail);
                    break;
                }
            } else {
                t.persist(next_addr(last));
                let _ = t.cas(q.tail, last.to_raw(), next.to_raw());
                t.flush(q.tail);
            }
        }
        self.log_finish(0);
    }

    fn dequeue(&mut self) -> Option<u64> {
        let t = self.thread;
        let q = self.queue;
        let seq = self.log_begin(2, PAddr::NULL);
        let tag = claim_tag(t.pid(), seq);
        let result = loop {
            let first = PAddr::from_raw(t.read(q.head));
            let last = PAddr::from_raw(t.read(q.tail));
            let next = PAddr::from_raw(t.read(next_addr(first)));
            if first.to_raw() != t.read(q.head) {
                continue;
            }
            if first == last {
                if next.is_null() {
                    break None;
                }
                t.persist(next_addr(last));
                let _ = t.cas(q.tail, last.to_raw(), next.to_raw());
                t.flush(q.tail);
            } else {
                let value = t.read(value_addr(next));
                // Log which node this operation is about to claim *before* the
                // claim CAS. Logging after a successful claim leaves a window in
                // which the claim is in the queue but the log does not name it:
                // a crash there makes recovery report not-applied, the re-run
                // then skips (helps past) the claimed node, and its value is
                // lost. The exhaustive dfck sweep catches exactly this window.
                t.write(q.log_addr(t.pid(), LOG_NODE), next.to_raw());
                t.flush(q.log_addr(t.pid(), 0));
                // Claim the node for detectability, then swing the head.
                if t.cas(dequeuer_addr(next), 0, tag) {
                    t.persist(dequeuer_addr(next));
                    let _ = t.cas(q.head, first.to_raw(), next.to_raw());
                    t.persist(q.head);
                    break Some(value);
                } else {
                    // Someone else claimed it; help swing the head and retry.
                    let _ = t.cas(q.head, first.to_raw(), next.to_raw());
                }
            }
        };
        self.log_finish(result.map_or(0, |v| (v << 1) | 1));
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{MemConfig, Mode, PMem};
    use std::collections::HashSet;

    #[test]
    fn fifo_order_single_thread() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let q = LogQueue::new(&t, 1);
        let mut h = q.handle(&t);
        assert_eq!(h.dequeue(), None);
        for i in 1..=100 {
            h.enqueue(i);
        }
        for i in 1..=100 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn concurrent_elements_are_neither_lost_nor_duplicated() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 2_000;
        let mem = PMem::with_threads(THREADS);
        let q = LogQueue::new(&mem.thread(0), THREADS);
        let results: Vec<Vec<u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|pid| {
                    let mem = &mem;
                    let q = &q;
                    s.spawn(move || {
                        let t = mem.thread(pid);
                        let mut h = q.handle(&t);
                        let mut popped = Vec::new();
                        for i in 0..PER_THREAD {
                            h.enqueue((pid as u64) << 32 | i);
                            if let Some(v) = h.dequeue() {
                                popped.push(v);
                            }
                        }
                        popped
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let t = mem.thread(0);
        let mut h = q.handle(&t);
        let mut all: Vec<u64> = results.into_iter().flatten().collect();
        while let Some(v) = h.dequeue() {
            all.push(v);
        }
        assert_eq!(all.len(), THREADS * PER_THREAD as usize);
        let unique: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len());
    }

    #[test]
    fn contents_survive_full_system_crash() {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let t = mem.thread(0);
        let q = LogQueue::new(&t, 1);
        {
            let mut h = q.handle(&t);
            for i in 1..=25 {
                h.enqueue(i);
            }
            for _ in 0..5 {
                let _ = h.dequeue();
            }
        }
        mem.crash_all();
        let t = mem.thread(0);
        let mut h = q.handle(&t);
        for i in 6..=25 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn recovery_detects_completed_and_missing_operations() {
        let mem = PMem::new(MemConfig::new(2).mode(Mode::SharedCache));
        let t = mem.thread(0);
        let q = LogQueue::new(&t, 2);
        let mut h = q.handle(&t);
        h.enqueue(1);
        // A completed operation (log marked done) recovers as None.
        assert_eq!(q.recover(&t), RecoveredOp::None);
        // Simulate an interrupted enqueue: log it, link the node, but crash before
        // marking the log done.
        let node = alloc_node(&t, 99);
        t.persist(node);
        h.log_begin(1, node);
        let last = PAddr::from_raw(t.read(q.tail));
        assert!(t.cas(next_addr(last), 0, node.to_raw()));
        t.persist(next_addr(last));
        mem.crash_all();
        let t = mem.thread(0);
        assert_eq!(q.recover(&t), RecoveredOp::EnqueueApplied);
        // And an interrupted enqueue whose node never got linked recovers as
        // not-applied.
        let h = q.handle(&t);
        let unlinked = alloc_node(&t, 100);
        t.persist(unlinked);
        h.log_begin(1, unlinked);
        mem.crash_all();
        let t = mem.thread(0);
        assert_eq!(q.recover(&t), RecoveredOp::EnqueueNotApplied);
    }

    #[test]
    fn recovery_cost_grows_with_queue_length() {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let t = mem.thread(0);
        let q = LogQueue::new(&t, 1);
        let mut h = q.handle(&t);
        let measure = |n: u64, h: &mut LogQueueHandle, t: &PThread| {
            for i in 0..n {
                h.enqueue(i);
            }
            // Pretend an enqueue of an unlinked node was interrupted.
            let node = alloc_node(t, 12345);
            h.log_begin(1, node);
            let before = t.stats().recovery_steps;
            let _ = q.recover(t);
            let steps = t.stats().recovery_steps - before;
            h.log_finish(0);
            steps
        };
        let short = measure(10, &mut h, &t);
        let long = measure(1_000, &mut h, &t);
        assert!(
            long > short * 10,
            "LogQueue recovery must scale with queue length ({short} vs {long})"
        );
    }
}
