//! The "General" queue: the Michael–Scott queue transformed by the
//! Low-Computation-Delay (CAS-Read) simulator of §6.
//!
//! Each operation is written exactly as the paper's transformation would emit it: an
//! explicit program-counter state machine in which every capsule contains at most
//! one CAS — implemented with the recoverable CAS + `checkRecovery` protocol — as
//! its first shared-memory effect, followed only by reads and local work, and ends
//! with a capsule boundary persisting the locals the next capsule needs.
//!
//! Two configurations correspond to the paper's variants:
//!
//! * **General** — [`BoundaryStyle::General`] frames (double-buffered locals +
//!   validity mask; two fences per boundary),
//! * **General-Opt** — [`BoundaryStyle::Compact`] frames (all locals on one cache
//!   line; one fence per boundary) and elision of fences that are immediately
//!   followed by a CAS (§9, §10 "our optimizations include…").
//!
//! Durability in the shared-cache model comes from [`Durability::Manual`] flushes
//! (Figure 6) or from the Izraelevitz thread option (Figure 5).

use capsules::{adaptive_enabled, recoverable_cas, BoundaryStyle, CapsuleRuntime, CapsuleStep, ContentionMeasure};
use pmem::{PAddr, PThread};
use rcas::{RcasLayout, RcasSpace};

use crate::api::{Durability, QueueHandle};
use crate::node::{next_addr, value_addr, NODE_WORDS};

// Persisted local slots (user indices).
const L_VAL: usize = 0; // enqueue: value to insert; dequeue: value to return
const L_AUX: usize = 1; // enqueue: the new node; dequeue: the observed head
const L_LAST: usize = 2; // observed tail
const L_NEXT: usize = 3; // observed successor
/// Number of user locals a handle's capsule runtime uses.
pub const GENERAL_LOCALS: usize = 4;

// Enqueue program counters.
const E_START: u32 = 0;
const E_LINK: u32 = 1;
const E_SWING: u32 = 2;
const E_ADVANCE: u32 = 3;
const E_DONE: u32 = 4;
/// Contention-adaptive fast enqueue: the whole operation in one capsule.
const F_ENQ: u32 = 5;
// Dequeue program counters.
const D_START: u32 = 10;
const D_CAS_HEAD: u32 = 11;
const D_DONE_SOME: u32 = 12;
const D_ADVANCE: u32 = 13;
const D_DONE_NONE: u32 = 14;
/// Contention-adaptive fast dequeue: the whole operation in one capsule.
const F_DEQ: u32 = 15;

/// The shared, persistent part of the transformed queue.
#[derive(Clone, Copy, Debug)]
pub struct GeneralQueue {
    head: PAddr,
    tail: PAddr,
    space: RcasSpace,
    durability: Durability,
    style: BoundaryStyle,
    /// Whether handles try the contention-adaptive fast path (`DF_ADAPTIVE`).
    adaptive: bool,
    /// Contention-policy template copied into every handle's runtime.
    contention: ContentionMeasure,
}

impl GeneralQueue {
    /// Create an empty queue for `nprocs` processes.
    pub fn new(
        thread: &PThread<'_>,
        nprocs: usize,
        durability: Durability,
        style: BoundaryStyle,
    ) -> GeneralQueue {
        // Under manual durability the recoverable-CAS layer itself must follow
        // the flush discipline (announcement lines durable before every
        // publishing CAS) — `persist_line` after the CAS is not enough once
        // full-system crashes can roll back unflushed announcement state.
        let space =
            RcasSpace::new(thread, nprocs, RcasLayout::DEFAULT).with_durability(durability.manual());
        let sentinel = thread.alloc(NODE_WORDS);
        space.init_word(thread, next_addr(sentinel), 0);
        let head = thread.alloc(1);
        let tail = thread.alloc(1);
        space.init_word(thread, head, sentinel.to_raw());
        space.init_word(thread, tail, sentinel.to_raw());
        if durability.manual() {
            thread.persist(sentinel);
            thread.persist(head);
            thread.persist(tail);
        }
        GeneralQueue {
            head,
            tail,
            space,
            durability,
            style,
            adaptive: adaptive_enabled(),
            contention: ContentionMeasure::new(),
        }
    }

    /// Override the contention policy handles start with (the sensitized
    /// `dfck` sweeps lower the trip threshold to 1 so any lost fast-path CAS
    /// deterministically exercises the fast→slow demotion boundary).
    pub fn with_contention(mut self, policy: ContentionMeasure) -> GeneralQueue {
        self.contention = policy;
        self
    }

    /// Override the contention-adaptive fast path (tests and the `dfck` sweeper
    /// force it on or off regardless of the `DF_ADAPTIVE` environment knob).
    pub fn with_adaptive(mut self, adaptive: bool) -> GeneralQueue {
        self.adaptive = adaptive;
        self
    }

    /// Whether handles of this queue try the contention-adaptive fast path.
    pub fn adaptive(&self) -> bool {
        self.adaptive
    }

    /// The recoverable-CAS space used by this queue.
    pub fn space(&self) -> &RcasSpace {
        &self.space
    }

    /// Whether this is the hand-optimised (`-Opt`) configuration.
    pub fn optimised(&self) -> bool {
        self.style == BoundaryStyle::Compact
    }

    /// Create the calling thread's handle (allocating its capsule frame).
    pub fn handle<'q, 't, 'm>(&'q self, thread: &'t PThread<'m>) -> GeneralQueueHandle<'q, 't, 'm> {
        let mut rt = CapsuleRuntime::new(thread, self.style, GENERAL_LOCALS);
        rt.set_contention(self.contention);
        GeneralQueueHandle { queue: self, rt }
    }

    /// Re-attach a handle after a restart, resuming from the process's restart
    /// pointer (the frame it published before the crash). Recovery is constant
    /// work: reload the frame, and the first capsule re-executed consults the
    /// recoverable CAS.
    pub fn attach_handle<'q, 't, 'm>(
        &'q self,
        thread: &'t PThread<'m>,
    ) -> GeneralQueueHandle<'q, 't, 'm> {
        let mut rt = CapsuleRuntime::attach_from_restart_pointer(thread, self.style, GENERAL_LOCALS);
        rt.set_contention(self.contention);
        GeneralQueueHandle { queue: self, rt }
    }

    /// Count elements reachable from the head (diagnostic; not linearizable).
    pub fn len(&self, thread: &PThread<'_>) -> usize {
        let mut count = 0;
        let mut node = PAddr::from_raw(self.space.read(thread, self.head));
        loop {
            let next = PAddr::from_raw(self.space.read(thread, next_addr(node)));
            if next.is_null() {
                break;
            }
            count += 1;
            node = next;
        }
        count
    }

    /// Whether the queue is empty (same caveats as [`len`](Self::len)).
    pub fn is_empty(&self, thread: &PThread<'_>) -> bool {
        self.len(thread) == 0
    }

    /// Flush + (unless optimised away) fence a line, per the manual-durability
    /// discipline.
    fn persist_line(&self, thread: &PThread<'_>, addr: PAddr) {
        if !self.durability.manual() {
            return;
        }
        thread.flush(addr);
        // The -Opt variants omit fences that are immediately followed by a CAS:
        // the lock prefix orders the pending flush just like the fence would
        // (Px86). A capsule *boundary* does not qualify — see
        // [`persist_line_before_boundary`](Self::persist_line_before_boundary).
        if !self.optimised() {
            thread.fence();
        }
    }

    /// Flush + fence a line unconditionally (under the manual discipline): for
    /// persists whose next publication is a capsule boundary rather than a CAS.
    /// The compact boundary publishes its control word with a release *store* —
    /// a plain `mov` on x86, which (unlike a locked CAS) does not order earlier
    /// `clflushopt`s — so a crash between the boundary's own flush and its
    /// trailing fence could persist the frame without the node it references.
    /// Recovery would then resume from the boundary and link a node whose
    /// contents never became durable.
    fn persist_line_before_boundary(&self, thread: &PThread<'_>, addr: PAddr) {
        if !self.durability.manual() {
            return;
        }
        thread.flush(addr);
        thread.fence();
    }
}

/// Per-thread handle: the thread's capsule runtime plus a reference to the queue.
pub struct GeneralQueueHandle<'q, 't, 'm> {
    queue: &'q GeneralQueue,
    rt: CapsuleRuntime<'t, 'm>,
}

impl<'q, 't, 'm> GeneralQueueHandle<'q, 't, 'm> {
    /// Access the underlying capsule runtime (metrics, entry-boundary policy…).
    pub fn runtime_mut(&mut self) -> &mut CapsuleRuntime<'t, 'm> {
        &mut self.rt
    }

    /// Mirror of [`CapsuleRuntime::set_entry_boundary`]: the paper's measurements
    /// omit the per-operation entry boundary because it is identical for every
    /// variant under test (§10).
    pub fn set_entry_boundary(&mut self, enabled: bool) {
        self.rt.set_entry_boundary(enabled);
    }

    /// Pick the entry capsule for the next operation: the adaptive fast pc when
    /// the queue is adaptive and the handle's contention measure is off
    /// probation, the full simulator otherwise.
    fn entry_pc(&mut self, fast: u32, slow: u32) -> u32 {
        if self.queue.adaptive && !self.rt.contention_mut().begin_op() {
            fast
        } else {
            slow
        }
    }

    /// Fast-path crash triage shared by both operations: returns `Some(evidence)`
    /// when the crash interrupted *this* operation's evidence-carrying CAS and
    /// that CAS took effect (the operation is complete); `None` means no durable
    /// effect escaped and the fast loop may simply retry. Either way the
    /// runtime's sequence number is raised past every announced attempt so no
    /// sequence number is ever reused.
    fn recover_fast(
        rt: &mut CapsuleRuntime<'_, '_>,
        space: &RcasSpace,
    ) -> Option<rcas::CasEvidence> {
        let t = rt.thread();
        // Honour the sharding contract: a recovering process re-runs the notify
        // step for its own announcement group before consulting its own state.
        let _ = space.help_group(t);
        let ann = space.announcement(t);
        if ann.seq <= rt.seq() {
            return None; // crash hit before this op announced anything
        }
        rt.sync_seq(ann.seq);
        let ev = space.evidence(t)?;
        if ev.result.seq != ann.seq {
            return None;
        }
        if space.recover(t, ev.x).flag {
            Some(ev)
        } else {
            None // announced but the CAS never took durable effect: retry
        }
    }

    fn enqueue_impl(&mut self, value: u64) {
        let queue = self.queue;
        let space = queue.space;
        self.rt.set_local(L_VAL, value);
        let entry = self.entry_pc(F_ENQ, E_START);
        self.rt.run_op(entry, |rt| {
            match rt.pc() {
                // Adaptive fast path: the whole Michael–Scott enqueue as one
                // un-checkpointed capsule around a single evidence-carrying
                // recoverable CAS. A crash anywhere inside re-enters here and is
                // resolved from the announcement line alone.
                F_ENQ => {
                    if rt.crashed() {
                        if let Some(ev) = Self::recover_fast(rt, &space) {
                            // The link CAS took effect; re-persist its line (the
                            // crash may have interrupted the original flush) and
                            // finish. The tail may lag by one node, which the
                            // Michael–Scott invariant allows (any later
                            // operation helps swing it).
                            queue.persist_line(rt.thread(), ev.x);
                            rt.finish_boundary(E_DONE);
                            return CapsuleStep::Done(());
                        }
                    }
                    let value = rt.local(L_VAL);
                    let t = rt.thread();
                    let node = t.alloc(NODE_WORDS);
                    t.write(value_addr(node), value);
                    space.init_word(t, next_addr(node), 0);
                    queue.persist_line(t, node);
                    loop {
                        let last = PAddr::from_raw(space.read(t, queue.tail));
                        let next = space.read(t, next_addr(last));
                        if next != 0 {
                            // Help swing a lagging tail; anonymous CASes are
                            // repeat-safe, so no boundary is needed.
                            let _ = space.cas_anonymous(t, queue.tail, last.to_raw(), next);
                            queue.persist_line(t, queue.tail);
                            continue;
                        }
                        let seq = rt.advance_seq();
                        if space.cas_with_evidence(t, next_addr(last), 0, node.to_raw(), seq, 0) {
                            rt.contention_mut().record_success();
                            queue.persist_line(t, next_addr(last));
                            let _ = space.cas_anonymous(t, queue.tail, last.to_raw(), node.to_raw());
                            queue.persist_line(t, queue.tail);
                            rt.finish_boundary(E_DONE);
                            return CapsuleStep::Done(());
                        }
                        if rt.contention_mut().record_failure() {
                            // Contended: demote this operation to the full
                            // simulator (the node is abandoned, as on any lost
                            // race; E_START allocates afresh).
                            rt.boundary(E_START);
                            return CapsuleStep::Continue;
                        }
                    }
                }
                // Read-only capsule: allocate and initialise the node, read the
                // tail and its successor, and branch.
                E_START => {
                    let value = rt.local(L_VAL);
                    let t = rt.thread();
                    let node = t.alloc(NODE_WORDS);
                    t.write(value_addr(node), value);
                    space.init_word(t, next_addr(node), 0);
                    // The E_LINK boundary (not a CAS) publishes the node pointer
                    // next, so the fence cannot be elided here.
                    queue.persist_line_before_boundary(t, node);
                    let last = PAddr::from_raw(space.read(t, queue.tail));
                    let next = space.read(t, next_addr(last));
                    rt.set_local_addr(L_AUX, node);
                    rt.set_local_addr(L_LAST, last);
                    if next == 0 {
                        rt.boundary(E_LINK);
                    } else {
                        rt.set_local(L_NEXT, next);
                        rt.boundary(E_ADVANCE);
                    }
                    CapsuleStep::Continue
                }
                // CAS-Read capsule: link the node after the observed tail.
                E_LINK => {
                    let node = rt.local(L_AUX);
                    let last = rt.local_addr(L_LAST);
                    let ok = recoverable_cas(rt, &space, next_addr(last), 0, node);
                    if ok {
                        queue.persist_line(rt.thread(), next_addr(last));
                        rt.boundary(E_SWING);
                    } else {
                        rt.boundary(E_START);
                    }
                    CapsuleStep::Continue
                }
                // CAS-Read capsule: swing the tail to the new node (failure is fine,
                // someone helped).
                E_SWING => {
                    let node = rt.local(L_AUX);
                    let last = rt.local(L_LAST);
                    let _ = recoverable_cas(rt, &space, queue.tail, last, node);
                    queue.persist_line(rt.thread(), queue.tail);
                    rt.finish_boundary(E_DONE);
                    CapsuleStep::Done(())
                }
                // CAS-Read capsule: help advance a lagging tail, then retry.
                E_ADVANCE => {
                    let last = rt.local(L_LAST);
                    let next = rt.local(L_NEXT);
                    let _ = recoverable_cas(rt, &space, queue.tail, last, next);
                    queue.persist_line(rt.thread(), queue.tail);
                    rt.boundary(E_START);
                    CapsuleStep::Continue
                }
                // The final boundary had been published before a crash: done.
                E_DONE => CapsuleStep::Done(()),
                pc => unreachable!("general enqueue: unexpected pc {pc}"),
            }
        })
    }

    fn dequeue_impl(&mut self) -> Option<u64> {
        let queue = self.queue;
        let space = queue.space;
        let entry = self.entry_pc(F_DEQ, D_START);
        self.rt.run_op(entry, |rt| {
            match rt.pc() {
                // Adaptive fast path: the whole Michael–Scott dequeue as one
                // un-checkpointed capsule. The dequeued value rides the
                // evidence's aux word so a post-CAS crash can still report it.
                F_DEQ => {
                    if rt.crashed() {
                        if let Some(ev) = Self::recover_fast(rt, &space) {
                            queue.persist_line(rt.thread(), ev.x);
                            let value = ev.aux;
                            rt.set_local(L_VAL, value);
                            rt.finish_boundary(D_DONE_SOME);
                            return CapsuleStep::Done(Some(value));
                        }
                    }
                    let t = rt.thread();
                    loop {
                        let first = PAddr::from_raw(space.read(t, queue.head));
                        let last = PAddr::from_raw(space.read(t, queue.tail));
                        let next = PAddr::from_raw(space.read(t, next_addr(first)));
                        if first == last {
                            if next.is_null() {
                                rt.finish_boundary(D_DONE_NONE);
                                return CapsuleStep::Done(None);
                            }
                            let _ =
                                space.cas_anonymous(t, queue.tail, last.to_raw(), next.to_raw());
                            queue.persist_line(t, queue.tail);
                            continue;
                        }
                        let value = t.read(value_addr(next));
                        let seq = rt.advance_seq();
                        if space.cas_with_evidence(
                            t,
                            queue.head,
                            first.to_raw(),
                            next.to_raw(),
                            seq,
                            value,
                        ) {
                            rt.contention_mut().record_success();
                            queue.persist_line(t, queue.head);
                            rt.set_local(L_VAL, value);
                            rt.finish_boundary(D_DONE_SOME);
                            return CapsuleStep::Done(Some(value));
                        }
                        if rt.contention_mut().record_failure() {
                            rt.boundary(D_START);
                            return CapsuleStep::Continue;
                        }
                    }
                }
                // Read-only capsule: read head, tail and head.next, and branch.
                D_START => {
                    let t = rt.thread();
                    let first = PAddr::from_raw(space.read(t, queue.head));
                    let last = PAddr::from_raw(space.read(t, queue.tail));
                    let next = PAddr::from_raw(space.read(t, next_addr(first)));
                    if first == last {
                        if next.is_null() {
                            rt.finish_boundary(D_DONE_NONE);
                            return CapsuleStep::Done(None);
                        }
                        rt.set_local_addr(L_LAST, last);
                        rt.set_local_addr(L_NEXT, next);
                        rt.boundary(D_ADVANCE);
                        return CapsuleStep::Continue;
                    }
                    let value = t.read(value_addr(next));
                    rt.set_local(L_VAL, value);
                    rt.set_local_addr(L_AUX, first);
                    rt.set_local_addr(L_NEXT, next);
                    rt.boundary(D_CAS_HEAD);
                    CapsuleStep::Continue
                }
                // CAS-Read capsule: swing the head past the dequeued node.
                D_CAS_HEAD => {
                    let first = rt.local(L_AUX);
                    let next = rt.local(L_NEXT);
                    let ok = recoverable_cas(rt, &space, queue.head, first, next);
                    if ok {
                        queue.persist_line(rt.thread(), queue.head);
                        let value = rt.local(L_VAL);
                        rt.finish_boundary(D_DONE_SOME);
                        CapsuleStep::Done(Some(value))
                    } else {
                        rt.boundary(D_START);
                        CapsuleStep::Continue
                    }
                }
                // CAS-Read capsule: help advance a lagging tail, then retry.
                D_ADVANCE => {
                    let last = rt.local(L_LAST);
                    let next = rt.local(L_NEXT);
                    let _ = recoverable_cas(rt, &space, queue.tail, last, next);
                    queue.persist_line(rt.thread(), queue.tail);
                    rt.boundary(D_START);
                    CapsuleStep::Continue
                }
                // Crash after the final boundary: the result was persisted.
                D_DONE_SOME => CapsuleStep::Done(Some(rt.local(L_VAL))),
                D_DONE_NONE => CapsuleStep::Done(None),
                pc => unreachable!("general dequeue: unexpected pc {pc}"),
            }
        })
    }
}

impl QueueHandle for GeneralQueueHandle<'_, '_, '_> {
    fn enqueue(&mut self, value: u64) {
        self.enqueue_impl(value)
    }

    fn dequeue(&mut self) -> Option<u64> {
        self.dequeue_impl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{install_quiet_crash_hook, CrashPolicy, MemConfig, Mode, PMem};
    use std::collections::HashSet;

    fn new_queue(mem: &PMem, durability: Durability, style: BoundaryStyle) -> GeneralQueue {
        GeneralQueue::new(&mem.thread(0), mem.threads(), durability, style)
    }

    #[test]
    fn fifo_order_single_thread_both_styles() {
        for style in [BoundaryStyle::General, BoundaryStyle::Compact] {
            let mem = PMem::with_threads(1);
            let q = new_queue(&mem, Durability::Manual, style);
            let t = mem.thread(0);
            let mut h = q.handle(&t);
            assert_eq!(h.dequeue(), None);
            for i in 1..=200 {
                h.enqueue(i);
            }
            for i in 1..=200 {
                assert_eq!(h.dequeue(), Some(i), "style {style:?}");
            }
            assert_eq!(h.dequeue(), None);
        }
    }

    #[test]
    fn concurrent_elements_are_neither_lost_nor_duplicated() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 2_000;
        let mem = PMem::with_threads(THREADS);
        let q = new_queue(&mem, Durability::Manual, BoundaryStyle::General);
        let results: Vec<Vec<u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|pid| {
                    let mem = &mem;
                    let q = &q;
                    s.spawn(move || {
                        let t = mem.thread(pid);
                        let mut h = q.handle(&t);
                        let mut popped = Vec::new();
                        for i in 0..PER_THREAD {
                            h.enqueue((pid as u64) << 32 | i);
                            if let Some(v) = h.dequeue() {
                                popped.push(v);
                            }
                        }
                        popped
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let t = mem.thread(0);
        let mut h = q.handle(&t);
        let mut all: Vec<u64> = results.into_iter().flatten().collect();
        while let Some(v) = h.dequeue() {
            all.push(v);
        }
        assert_eq!(all.len(), THREADS * PER_THREAD as usize);
        let unique: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len());
    }

    #[test]
    fn single_thread_operations_survive_random_crashes() {
        install_quiet_crash_hook();
        let mem = PMem::with_threads(1);
        let q = new_queue(&mem, Durability::Manual, BoundaryStyle::General);
        let t = mem.thread(0);
        let mut h = q.handle(&t);
        t.set_crash_policy(CrashPolicy::Random { prob: 0.02, seed: 31 });
        for i in 1..=300u64 {
            h.enqueue(i);
        }
        let mut out = Vec::new();
        while let Some(v) = h.dequeue() {
            out.push(v);
        }
        t.disarm_crashes();
        assert_eq!(out, (1..=300).collect::<Vec<u64>>(), "exactly-once despite crashes");
        assert!(t.stats().crashes > 0, "the policy should have fired at least once");
    }

    #[test]
    fn concurrent_operations_survive_random_crashes() {
        install_quiet_crash_hook();
        const THREADS: usize = 3;
        const PER_THREAD: u64 = 300;
        let mem = PMem::with_threads(THREADS);
        let q = new_queue(&mem, Durability::Manual, BoundaryStyle::General);
        std::thread::scope(|s| {
            for pid in 0..THREADS {
                let mem = &mem;
                let q = &q;
                s.spawn(move || {
                    let t = mem.thread(pid);
                    let mut h = q.handle(&t);
                    t.set_crash_policy(CrashPolicy::Random {
                        prob: 0.005,
                        seed: 5000 + pid as u64,
                    });
                    for i in 0..PER_THREAD {
                        h.enqueue((pid as u64) << 32 | i);
                    }
                    t.disarm_crashes();
                });
            }
        });
        // Every enqueued element must be present exactly once.
        let t = mem.thread(0);
        let mut h = q.handle(&t);
        let mut seen = HashSet::new();
        while let Some(v) = h.dequeue() {
            assert!(seen.insert(v), "value {v:#x} dequeued twice");
        }
        assert_eq!(seen.len(), THREADS * PER_THREAD as usize);
    }

    #[test]
    fn manual_durability_survives_full_system_crash() {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let q = new_queue(&mem, Durability::Manual, BoundaryStyle::General);
        {
            let t = mem.thread(0);
            let mut h = q.handle(&t);
            for i in 1..=20 {
                h.enqueue(i);
            }
        }
        mem.crash_all();
        let t = mem.thread(0);
        let mut h = q.handle(&t);
        // Durable linearizability: the persisted queue holds a prefix-consistent
        // state; since every enqueue completed (returned), all 20 must be present.
        for i in 1..=20 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn opt_variant_uses_fewer_fences_per_operation() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let measure = |style| {
            let q = GeneralQueue::new(&t, 1, Durability::Manual, style);
            let mut h = q.handle(&t);
            h.set_entry_boundary(false);
            let before = t.stats();
            for i in 0..50 {
                h.enqueue(i);
            }
            for _ in 0..50 {
                let _ = h.dequeue();
            }
            t.stats().since(&before)
        };
        let general = measure(BoundaryStyle::General);
        let opt = measure(BoundaryStyle::Compact);
        assert!(
            opt.fences < general.fences,
            "General-Opt must issue fewer fences (got {} vs {})",
            opt.fences,
            general.fences
        );
        assert!(opt.flushes <= general.flushes);
    }

    #[test]
    fn attach_handle_resumes_after_restart() {
        let mem = PMem::with_threads(1);
        let q = new_queue(&mem, Durability::Manual, BoundaryStyle::General);
        {
            let t = mem.thread(0);
            let mut h = q.handle(&t);
            h.enqueue(7);
            h.enqueue(8);
        }
        mem.crash_all();
        let t = mem.thread(0);
        let mut h = q.attach_handle(&t);
        assert_eq!(h.dequeue(), Some(7));
        assert_eq!(h.dequeue(), Some(8));
    }
}
