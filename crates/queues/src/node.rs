//! Queue node layout.
//!
//! Every queue in this crate uses the same persistent node record so that their
//! per-operation memory traffic is comparable:
//!
//! ```text
//! word 0 : value
//! word 1 : next        (plain pointer, or a recoverable-CAS ⟨value,pid,seq⟩ word)
//! word 2 : dequeuer    (only used by the detectable LogQueue; pid+1 of the claimer)
//! ```
//!
//! Nodes are bump-allocated from the simulated persistent memory and never reused
//! within a run, which keeps every pointer CAS ABA-free (the property the
//! recoverable CAS requires of its callers).

use pmem::{PAddr, PThread};

/// Word offset of the value field.
pub const VALUE: u64 = 0;
/// Word offset of the next-pointer field.
pub const NEXT: u64 = 1;
/// Word offset of the dequeuer field (LogQueue only).
pub const DEQUEUER: u64 = 2;
/// Number of words in a node.
pub const NODE_WORDS: u64 = 3;

/// Allocate a node holding `value` with a null next pointer. The caller decides how
/// the `next` word is formatted (plain zero is both a null plain pointer and a null
/// recoverable-CAS value attributed to the anonymous pid).
pub fn alloc_node(thread: &PThread<'_>, value: u64) -> PAddr {
    let node = thread.alloc(NODE_WORDS);
    thread.write(node.offset(VALUE), value);
    // next and dequeuer are already durably zero (fresh allocations are zeroed).
    node
}

/// Address of a node's value word.
pub fn value_addr(node: PAddr) -> PAddr {
    node.offset(VALUE)
}

/// Address of a node's next word.
pub fn next_addr(node: PAddr) -> PAddr {
    node.offset(NEXT)
}

/// Address of a node's dequeuer word.
pub fn dequeuer_addr(node: PAddr) -> PAddr {
    node.offset(DEQUEUER)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PMem;

    #[test]
    fn nodes_are_laid_out_as_documented() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let n = alloc_node(&t, 42);
        assert_eq!(t.read(value_addr(n)), 42);
        assert_eq!(t.read(next_addr(n)), 0);
        assert_eq!(t.read(dequeuer_addr(n)), 0);
        assert_eq!(value_addr(n), n);
        assert_eq!(next_addr(n).index(), n.index() + 1);
        assert_eq!(dequeuer_addr(n).index(), n.index() + 2);
    }

    #[test]
    fn nodes_do_not_straddle_cache_lines() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        for _ in 0..64 {
            let n = alloc_node(&t, 1);
            assert_eq!(
                n.line_base(),
                n.offset(NODE_WORDS - 1).line_base(),
                "a node must fit in one cache line so one flush persists it"
            );
        }
    }
}
