//! # `queues` — the data structures evaluated in §10
//!
//! The paper evaluates its transformations by applying them to the Michael–Scott
//! lock-free queue and comparing against two competitors. This crate contains every
//! queue that appears in Figures 5–7:
//!
//! | name in the paper | type here | construction |
//! |---|---|---|
//! | MSQ (original, not persistent) | [`MsQueue`] | plain CAS on the simulated memory |
//! | Izraelevitz queue | [`MsQueue`] run with [`pmem::ThreadOptions`]`{ izraelevitz: true }` | automatic flush-after-every-access |
//! | General | [`GeneralQueue`] (`BoundaryStyle::General`) | Low-Computation-Delay (CAS-Read) simulator, §6 |
//! | General-Opt | [`GeneralQueue`] (`BoundaryStyle::Compact`, fence elision) | hand-optimised §9 tricks |
//! | Normalized | [`NormalizedQueue`] (`BoundaryStyle::General`) | Persistent Normalized Simulator, §7 |
//! | Normalized-Opt | [`NormalizedQueue`] (`BoundaryStyle::Compact`, inline CAS list) | hand-optimised §9 tricks |
//! | LogQueue | [`LogQueue`] | Friedman et al.'s durable, detectable queue (hand-tuned competitor) |
//! | Romulus queue | `romulus::RomulusQueue` (separate crate) | durable transactional memory competitor |
//!
//! Durability in the shared-cache model comes either from hand-placed flushes
//! ([`Durability::Manual`], the Figure 6 configuration) or from the Izraelevitz
//! construction applied by the thread options (the Figure 5 configuration); in the
//! private-cache model ([`Durability::None`] + `Mode::PrivateCache`) no flushes are
//! needed at all.
//!
//! Every queue exposes the same minimal interface through [`QueueHandle`] so the
//! benchmark harness and the integration tests can drive them uniformly.

#![warn(missing_docs)]

pub mod api;
pub mod general;
pub mod log_queue;
pub mod msq;
pub mod node;
pub mod normalized;

pub use api::{Durability, QueueHandle};
pub use general::{GeneralQueue, GeneralQueueHandle};
pub use log_queue::{LogQueue, LogQueueHandle, RecoveredOp};
pub use msq::{MsQueue, MsqHandle};
pub use normalized::{NormalizedQueue, NormalizedQueueHandle};
