//! The "Normalized" queue: the Michael–Scott queue expressed as a normalized data
//! structure (CAS generator / executor / wrap-up) and run through the Persistent
//! Normalized Simulator of §7 — one capsule boundary per retry-loop iteration.
//!
//! * **Normalized** — [`BoundaryStyle::General`] frames.
//! * **Normalized-Opt** — [`BoundaryStyle::Compact`] frames plus the inline CAS-list
//!   optimisation ([`NormalizedSimulator::with_inline_lists`]), which is the "reduce
//!   one flush" hand-optimisation the paper describes for this variant.
//!
//! In the normalized decomposition, the executor only ever CASes `head` and node
//! `next` fields; the tail pointer is advanced exclusively by helping code inside
//! the generator and wrap-up (parallelizable methods), so it is kept as a plain
//! word and updated with plain CASes (§7 explains why such locations need no
//! recoverable CAS).

use capsules::{adaptive_enabled, BoundaryStyle, CapsuleRuntime, ContentionMeasure};
use delayfree::{CasDesc, CasList, NormalizedCtx, NormalizedOp, NormalizedSimulator, WrapUp};
use pmem::{PAddr, PThread};
use rcas::{RcasLayout, RcasSpace};

use crate::api::{Durability, QueueHandle};
use crate::node::{next_addr, value_addr, NODE_WORDS};

/// Number of user locals the handle's capsule runtime needs (the inline-list
/// optimisation needs the larger figure; using it everywhere keeps handles uniform).
pub const NORMALIZED_QUEUE_LOCALS: usize = delayfree::NORMALIZED_INLINE_LOCALS;

/// The shared, persistent part of the normalized queue.
#[derive(Clone, Copy, Debug)]
pub struct NormalizedQueue {
    /// Recoverable-CAS word holding the head node address.
    head: PAddr,
    /// Plain word holding the tail node address (only helping code CASes it).
    tail: PAddr,
    space: RcasSpace,
    durability: Durability,
    style: BoundaryStyle,
    optimised: bool,
    /// Whether handles try the contention-adaptive fast path (`DF_ADAPTIVE`).
    adaptive: bool,
    /// Contention-policy template copied into every handle's runtime.
    contention: ContentionMeasure,
}

impl NormalizedQueue {
    /// Create an empty queue for `nprocs` processes. `optimised` selects the
    /// Normalized-Opt configuration (compact frames + inline CAS lists).
    pub fn new(
        thread: &PThread<'_>,
        nprocs: usize,
        durability: Durability,
        optimised: bool,
    ) -> NormalizedQueue {
        // See GeneralQueue::new: the recoverable-CAS layer follows the durable
        // flush discipline whenever the queue issues manual flushes.
        let space =
            RcasSpace::new(thread, nprocs, RcasLayout::DEFAULT).with_durability(durability.manual());
        let sentinel = thread.alloc(NODE_WORDS);
        space.init_word(thread, next_addr(sentinel), 0);
        let head = thread.alloc(1);
        let tail = thread.alloc(1);
        space.init_word(thread, head, sentinel.to_raw());
        thread.write(tail, sentinel.to_raw());
        if durability.manual() {
            thread.persist(sentinel);
            thread.persist(head);
            thread.persist(tail);
        }
        NormalizedQueue {
            head,
            tail,
            space,
            durability,
            style: if optimised {
                BoundaryStyle::Compact
            } else {
                BoundaryStyle::General
            },
            optimised,
            adaptive: adaptive_enabled(),
            contention: ContentionMeasure::new(),
        }
    }

    /// Override the contention policy handles start with (the sensitized
    /// `dfck` sweeps lower the trip threshold to 1 so any lost fast-path CAS
    /// deterministically exercises the fast→slow demotion boundary).
    pub fn with_contention(mut self, policy: ContentionMeasure) -> NormalizedQueue {
        self.contention = policy;
        self
    }

    /// Override the contention-adaptive fast path (tests and the `dfck` sweeper
    /// force it on or off regardless of the `DF_ADAPTIVE` environment knob).
    pub fn with_adaptive(mut self, adaptive: bool) -> NormalizedQueue {
        self.adaptive = adaptive;
        self
    }

    /// Whether handles of this queue try the contention-adaptive fast path.
    pub fn adaptive(&self) -> bool {
        self.adaptive
    }

    /// The recoverable-CAS space used by this queue.
    pub fn space(&self) -> &RcasSpace {
        &self.space
    }

    /// Whether this is the Normalized-Opt configuration.
    pub fn optimised(&self) -> bool {
        self.optimised
    }

    fn simulator(&self) -> NormalizedSimulator {
        // Algorithm 4 persists the CAS list as part of the capsule boundary (it is a
        // stack-allocated local); the MSQ's lists have at most one entry, so they
        // always fit inline in the frame. The heap-buffer fallback only exists for
        // operations with long CAS lists.
        NormalizedSimulator::new(self.space, self.durability.manual())
            .with_inline_lists()
            .with_adaptive(self.adaptive)
    }

    /// Create the calling thread's handle (allocating its capsule frame).
    pub fn handle<'q, 't, 'm>(
        &'q self,
        thread: &'t PThread<'m>,
    ) -> NormalizedQueueHandle<'q, 't, 'm> {
        let mut rt = CapsuleRuntime::new(thread, self.style, NORMALIZED_QUEUE_LOCALS);
        rt.set_contention(self.contention);
        NormalizedQueueHandle {
            queue: self,
            sim: self.simulator(),
            rt,
        }
    }

    /// Re-attach a handle after a restart (resumes from the restart pointer).
    pub fn attach_handle<'q, 't, 'm>(
        &'q self,
        thread: &'t PThread<'m>,
    ) -> NormalizedQueueHandle<'q, 't, 'm> {
        let mut rt =
            CapsuleRuntime::attach_from_restart_pointer(thread, self.style, NORMALIZED_QUEUE_LOCALS);
        rt.set_contention(self.contention);
        NormalizedQueueHandle {
            queue: self,
            sim: self.simulator(),
            rt,
        }
    }

    /// Count elements reachable from the head (diagnostic; not linearizable).
    pub fn len(&self, thread: &PThread<'_>) -> usize {
        let mut count = 0;
        let mut node = PAddr::from_raw(self.space.read(thread, self.head));
        loop {
            let next = PAddr::from_raw(self.space.read(thread, next_addr(node)));
            if next.is_null() {
                break;
            }
            count += 1;
            node = next;
        }
        count
    }

    /// Whether the queue is empty (same caveats as [`len`](Self::len)).
    pub fn is_empty(&self, thread: &PThread<'_>) -> bool {
        self.len(thread) == 0
    }
}

/// The normalized enqueue: generator links nothing yet, it just proposes the single
/// `next` CAS; the wrap-up swings the tail.
struct EnqueueOp {
    queue: NormalizedQueue,
}

impl NormalizedOp for EnqueueOp {
    type Input = u64;
    type Output = ();

    fn generator(&self, ctx: &mut NormalizedCtx<'_, '_, '_>, value: &u64) -> CasList {
        let q = &self.queue;
        // Allocate and initialise the node (private persistent writes; repetition
        // just rebuilds an unpublished node).
        let node = ctx.alloc(NODE_WORDS);
        ctx.write_private(value_addr(node), *value);
        q.space.init_word(ctx.thread(), next_addr(node), 0);
        if q.durability.manual() {
            ctx.persist(node);
        }
        loop {
            let last = PAddr::from_raw(ctx.read_plain(q.tail));
            let next = q.space.read(ctx.thread(), next_addr(last));
            if next != 0 {
                // Help a lagging tail; the tail is never touched by an executor, so
                // a plain CAS suffices (and repetitions are harmless).
                let _ = ctx.plain_cas(q.tail, last.to_raw(), next);
                continue;
            }
            return vec![CasDesc::new(next_addr(last), 0, node.to_raw()).with_aux(last.to_raw())];
        }
    }

    fn wrap_up(
        &self,
        ctx: &mut NormalizedCtx<'_, '_, '_>,
        _value: &u64,
        cas_list: &CasList,
        executed: usize,
    ) -> WrapUp<()> {
        if executed == cas_list.len() {
            let q = &self.queue;
            let last = cas_list[0].aux;
            let node = cas_list[0].new;
            let _ = ctx.plain_cas(q.tail, last, node);
            if q.durability.manual() {
                ctx.persist(q.tail);
            }
            WrapUp::Done(())
        } else {
            WrapUp::Restart
        }
    }
}

/// The normalized dequeue: the generator proposes the head swing (or an empty list
/// when the queue is empty); the wrap-up reports the value carried in `aux`.
struct DequeueOp {
    queue: NormalizedQueue,
}

impl NormalizedOp for DequeueOp {
    type Input = ();
    type Output = Option<u64>;

    fn generator(&self, ctx: &mut NormalizedCtx<'_, '_, '_>, _input: &()) -> CasList {
        let q = &self.queue;
        loop {
            let first = PAddr::from_raw(q.space.read(ctx.thread(), q.head));
            let last = PAddr::from_raw(ctx.read_plain(q.tail));
            let next = PAddr::from_raw(q.space.read(ctx.thread(), next_addr(first)));
            if first == last {
                if next.is_null() {
                    return Vec::new(); // empty queue: nothing to CAS
                }
                let _ = ctx.plain_cas(q.tail, last.to_raw(), next.to_raw());
                continue;
            }
            let value = ctx.read_plain(value_addr(next));
            return vec![CasDesc::new(q.head, first.to_raw(), next.to_raw()).with_aux(value)];
        }
    }

    fn wrap_up(
        &self,
        _ctx: &mut NormalizedCtx<'_, '_, '_>,
        _input: &(),
        cas_list: &CasList,
        executed: usize,
    ) -> WrapUp<Option<u64>> {
        if cas_list.is_empty() {
            return WrapUp::Done(None);
        }
        if executed == cas_list.len() {
            // The executor (in durable mode) already persisted the head it swung;
            // no further flushes are needed here.
            WrapUp::Done(Some(cas_list[0].aux))
        } else {
            WrapUp::Restart
        }
    }
}

/// Per-thread handle for the normalized queue.
pub struct NormalizedQueueHandle<'q, 't, 'm> {
    queue: &'q NormalizedQueue,
    sim: NormalizedSimulator,
    rt: CapsuleRuntime<'t, 'm>,
}

impl<'q, 't, 'm> NormalizedQueueHandle<'q, 't, 'm> {
    /// Access the underlying capsule runtime.
    pub fn runtime_mut(&mut self) -> &mut CapsuleRuntime<'t, 'm> {
        &mut self.rt
    }

    /// See [`CapsuleRuntime::set_entry_boundary`].
    pub fn set_entry_boundary(&mut self, enabled: bool) {
        self.rt.set_entry_boundary(enabled);
    }
}

impl QueueHandle for NormalizedQueueHandle<'_, '_, '_> {
    fn enqueue(&mut self, value: u64) {
        let op = EnqueueOp { queue: *self.queue };
        self.sim.run(&mut self.rt, &op, &value)
    }

    fn dequeue(&mut self) -> Option<u64> {
        let op = DequeueOp { queue: *self.queue };
        self.sim.run(&mut self.rt, &op, &())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{install_quiet_crash_hook, CrashPolicy, MemConfig, Mode, PMem};
    use std::collections::HashSet;

    #[test]
    fn fifo_order_single_thread_both_variants() {
        for optimised in [false, true] {
            let mem = PMem::with_threads(1);
            let q = NormalizedQueue::new(&mem.thread(0), 1, Durability::Manual, optimised);
            let t = mem.thread(0);
            let mut h = q.handle(&t);
            assert_eq!(h.dequeue(), None);
            for i in 1..=200 {
                h.enqueue(i);
            }
            assert_eq!(q.len(&t), 200);
            for i in 1..=200 {
                assert_eq!(h.dequeue(), Some(i), "optimised={optimised}");
            }
            assert_eq!(h.dequeue(), None);
        }
    }

    #[test]
    fn concurrent_elements_are_neither_lost_nor_duplicated() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 2_000;
        let mem = PMem::with_threads(THREADS);
        let q = NormalizedQueue::new(&mem.thread(0), THREADS, Durability::Manual, false);
        let results: Vec<Vec<u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|pid| {
                    let mem = &mem;
                    let q = &q;
                    s.spawn(move || {
                        let t = mem.thread(pid);
                        let mut h = q.handle(&t);
                        let mut popped = Vec::new();
                        for i in 0..PER_THREAD {
                            h.enqueue((pid as u64) << 32 | i);
                            if let Some(v) = h.dequeue() {
                                popped.push(v);
                            }
                        }
                        popped
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let t = mem.thread(0);
        let mut h = q.handle(&t);
        let mut all: Vec<u64> = results.into_iter().flatten().collect();
        while let Some(v) = h.dequeue() {
            all.push(v);
        }
        assert_eq!(all.len(), THREADS * PER_THREAD as usize);
        let unique: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len());
    }

    #[test]
    fn operations_survive_random_crashes() {
        install_quiet_crash_hook();
        for optimised in [false, true] {
            let mem = PMem::with_threads(1);
            let q = NormalizedQueue::new(&mem.thread(0), 1, Durability::Manual, optimised);
            let t = mem.thread(0);
            let mut h = q.handle(&t);
            t.set_crash_policy(CrashPolicy::Random { prob: 0.02, seed: 99 });
            for i in 1..=300u64 {
                h.enqueue(i);
            }
            let mut out = Vec::new();
            while let Some(v) = h.dequeue() {
                out.push(v);
            }
            t.disarm_crashes();
            assert_eq!(out, (1..=300).collect::<Vec<u64>>(), "optimised={optimised}");
        }
    }

    #[test]
    fn concurrent_operations_survive_random_crashes() {
        install_quiet_crash_hook();
        const THREADS: usize = 3;
        const PER_THREAD: u64 = 250;
        let mem = PMem::with_threads(THREADS);
        let q = NormalizedQueue::new(&mem.thread(0), THREADS, Durability::Manual, false);
        std::thread::scope(|s| {
            for pid in 0..THREADS {
                let mem = &mem;
                let q = &q;
                s.spawn(move || {
                    let t = mem.thread(pid);
                    let mut h = q.handle(&t);
                    t.set_crash_policy(CrashPolicy::Random {
                        prob: 0.005,
                        seed: 7000 + pid as u64,
                    });
                    for i in 0..PER_THREAD {
                        h.enqueue((pid as u64) << 32 | i);
                    }
                    t.disarm_crashes();
                });
            }
        });
        let t = mem.thread(0);
        let mut h = q.handle(&t);
        let mut seen = HashSet::new();
        while let Some(v) = h.dequeue() {
            assert!(seen.insert(v), "value {v:#x} dequeued twice");
        }
        assert_eq!(seen.len(), THREADS * PER_THREAD as usize);
    }

    #[test]
    fn manual_durability_survives_full_system_crash() {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let q = NormalizedQueue::new(&mem.thread(0), 1, Durability::Manual, false);
        {
            let t = mem.thread(0);
            let mut h = q.handle(&t);
            for i in 1..=20 {
                h.enqueue(i);
            }
        }
        mem.crash_all();
        let t = mem.thread(0);
        let mut h = q.handle(&t);
        for i in 1..=20 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn normalized_uses_fewer_boundaries_than_general() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        // This compares the two *simulators*, so pin both to the slow path.
        // Normalized: one boundary before the executor + the final one per op.
        let qn = NormalizedQueue::new(&t, 1, Durability::Manual, false).with_adaptive(false);
        let mut hn = qn.handle(&t);
        hn.set_entry_boundary(false);
        for i in 0..20 {
            hn.enqueue(i);
        }
        let norm_boundaries = hn.runtime_mut().metrics().boundaries;
        // General: three boundaries per uncontended enqueue.
        let qg = crate::GeneralQueue::new(&t, 1, Durability::Manual, BoundaryStyle::General)
            .with_adaptive(false);
        let mut hg = qg.handle(&t);
        hg.set_entry_boundary(false);
        for i in 0..20 {
            hg.enqueue(i);
        }
        let gen_boundaries = hg.runtime_mut().metrics().boundaries;
        assert!(
            norm_boundaries < gen_boundaries,
            "normalized ({norm_boundaries}) must use fewer boundaries than general ({gen_boundaries})"
        );
    }

    #[test]
    fn opt_variant_uses_fewer_flushes_and_fences() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let measure = |optimised: bool| {
            let q = NormalizedQueue::new(&t, 1, Durability::Manual, optimised);
            let mut h = q.handle(&t);
            h.set_entry_boundary(false);
            let before = t.stats();
            for i in 0..50 {
                h.enqueue(i);
            }
            for _ in 0..50 {
                let _ = h.dequeue();
            }
            t.stats().since(&before)
        };
        let plain = measure(false);
        let opt = measure(true);
        assert!(opt.fences < plain.fences, "{} !< {}", opt.fences, plain.fences);
        assert!(opt.flushes < plain.flushes, "{} !< {}", opt.flushes, plain.flushes);
    }
}
