//! The original Michael–Scott lock-free queue (PODC 1996), on simulated memory.
//!
//! This is the *untransformed* baseline of Figure 7: plain CASes, no capsules, no
//! recoverable CAS, no flushes. Running its operations through a thread handle with
//! [`pmem::ThreadOptions`]`{ izraelevitz: true }` yields the "Izraelevitz queue" of
//! Figure 5 — durably linearizable by construction (a flush after every shared
//! access) but not detectable: after a crash a process cannot tell whether its
//! in-flight operation took effect.

use pmem::{PAddr, PThread};

use crate::api::QueueHandle;
use crate::node::{alloc_node, next_addr, value_addr};

/// The shared, persistent part of the queue: head and tail pointers (plain words
/// holding node addresses) plus the initial sentinel node.
#[derive(Clone, Copy, Debug)]
pub struct MsQueue {
    head: PAddr,
    tail: PAddr,
}

impl MsQueue {
    /// Create an empty queue (head and tail point at a sentinel node).
    pub fn new(thread: &PThread<'_>) -> MsQueue {
        let sentinel = alloc_node(thread, 0);
        let head = thread.alloc(1);
        let tail = thread.alloc(1);
        thread.write(head, sentinel.to_raw());
        thread.write(tail, sentinel.to_raw());
        MsQueue { head, tail }
    }

    /// Address of the head pointer (used by tests asserting durability).
    pub fn head_addr(&self) -> PAddr {
        self.head
    }

    /// Address of the tail pointer.
    pub fn tail_addr(&self) -> PAddr {
        self.tail
    }

    /// Create this thread's operation handle.
    pub fn handle<'q, 't, 'm>(&'q self, thread: &'t PThread<'m>) -> MsqHandle<'q, 't, 'm> {
        MsqHandle { queue: self, thread }
    }

    /// Count the elements currently reachable from the head (test/diagnostic helper;
    /// not linearizable with respect to concurrent operations).
    pub fn len(&self, thread: &PThread<'_>) -> usize {
        let mut count = 0;
        let mut node = PAddr::from_raw(thread.read(self.head));
        loop {
            let next = PAddr::from_raw(thread.read(next_addr(node)));
            if next.is_null() {
                break;
            }
            count += 1;
            node = next;
        }
        count
    }

    /// Whether the queue is empty (same caveats as [`len`](Self::len)).
    pub fn is_empty(&self, thread: &PThread<'_>) -> bool {
        self.len(thread) == 0
    }
}

/// Per-thread handle for the Michael–Scott queue.
#[derive(Debug)]
pub struct MsqHandle<'q, 't, 'm> {
    queue: &'q MsQueue,
    thread: &'t PThread<'m>,
}

impl QueueHandle for MsqHandle<'_, '_, '_> {
    fn enqueue(&mut self, value: u64) {
        let t = self.thread;
        let q = self.queue;
        let node = alloc_node(t, value);
        loop {
            let last = PAddr::from_raw(t.read(q.tail));
            let next = PAddr::from_raw(t.read(next_addr(last)));
            if last.to_raw() != t.read(q.tail) {
                continue;
            }
            if next.is_null() {
                if t.cas(next_addr(last), 0, node.to_raw()) {
                    let _ = t.cas(q.tail, last.to_raw(), node.to_raw());
                    return;
                }
            } else {
                let _ = t.cas(q.tail, last.to_raw(), next.to_raw());
            }
        }
    }

    fn dequeue(&mut self) -> Option<u64> {
        let t = self.thread;
        let q = self.queue;
        loop {
            let first = PAddr::from_raw(t.read(q.head));
            let last = PAddr::from_raw(t.read(q.tail));
            let next = PAddr::from_raw(t.read(next_addr(first)));
            if first.to_raw() != t.read(q.head) {
                continue;
            }
            if first == last {
                if next.is_null() {
                    return None;
                }
                let _ = t.cas(q.tail, last.to_raw(), next.to_raw());
            } else {
                let value = t.read(value_addr(next));
                if t.cas(q.head, first.to_raw(), next.to_raw()) {
                    return Some(value);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{MemConfig, Mode, PMem, ThreadOptions};
    use std::collections::HashSet;

    #[test]
    fn fifo_order_single_thread() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let q = MsQueue::new(&t);
        let mut h = q.handle(&t);
        assert_eq!(h.dequeue(), None);
        for i in 1..=100 {
            h.enqueue(i);
        }
        assert_eq!(q.len(&t), 100);
        for i in 1..=100 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
        assert!(q.is_empty(&t));
    }

    #[test]
    fn concurrent_enqueue_dequeue_preserves_elements() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 5_000;
        let mem = PMem::with_threads(THREADS);
        let q = MsQueue::new(&mem.thread(0));
        let results: Vec<Vec<u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|pid| {
                    let mem = &mem;
                    let q = &q;
                    s.spawn(move || {
                        let t = mem.thread(pid);
                        let mut h = q.handle(&t);
                        let mut popped = Vec::new();
                        for i in 0..PER_THREAD {
                            h.enqueue((pid as u64) << 32 | i);
                            if let Some(v) = h.dequeue() {
                                popped.push(v);
                            }
                        }
                        popped
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Drain what is left and check that every enqueued element was dequeued
        // exactly once (across the workers and the drain).
        let t = mem.thread(0);
        let mut h = q.handle(&t);
        let mut all: Vec<u64> = results.into_iter().flatten().collect();
        while let Some(v) = h.dequeue() {
            all.push(v);
        }
        assert_eq!(all.len(), THREADS * PER_THREAD as usize);
        let unique: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len(), "an element was dequeued twice");
    }

    #[test]
    fn izraelevitz_option_makes_contents_durable() {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let t = mem.thread_with(0, ThreadOptions { izraelevitz: true });
        let q = MsQueue::new(&t);
        {
            let mut h = q.handle(&t);
            for i in 1..=10 {
                h.enqueue(i);
            }
        }
        mem.crash_all();
        // After a full-system crash everything the queue wrote was already flushed.
        let t = mem.thread(0);
        let mut h = q.handle(&t);
        for i in 1..=10 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn plain_queue_issues_no_flushes_izraelevitz_does() {
        let mem = PMem::with_threads(1);
        let plain = mem.thread(0);
        let auto = mem.thread_with(0, ThreadOptions { izraelevitz: true });
        let q = MsQueue::new(&plain);
        let before = plain.stats();
        q.handle(&plain).enqueue(1);
        assert_eq!(plain.stats().since(&before).flushes, 0);
        let before = auto.stats();
        q.handle(&auto).enqueue(2);
        assert!(auto.stats().since(&before).flushes > 0);
    }
}
