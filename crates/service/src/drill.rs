//! The drill engine: run the whole sharded service — executors, an open-loop
//! client fleet, and a kill schedule — and time every recovery.
//!
//! A *drill* is one kill-restart cycle executed while traffic flows: pick a
//! victim (round-robin, periodically escalating to a full-system crash of
//! every shard at once), raise its kill flag, and measure
//! `detect` (kill → workers unwound and joined), `replay` (machine crashed,
//! rebuilt over the surviving arena, in-flight operations resumed), and
//! `total` (kill → serving again) against a recovery deadline. While the
//! victim is down the engine samples the other shards' completed-op counters
//! to prove they kept serving.
//!
//! Clients keep generating load until the drill schedule completes (with
//! `ops_per_client` as a floor), so every drill happens under traffic.

use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use crate::generator::{RequestGen, Zipfian};
use crate::metrics::{DrillKind, DrillRecord, LatencyHistogram, Percentiles};
use crate::router::{RetryPolicy, Router, RouterStats};
use crate::shard::{run_shard, ShardReport, ShardShared};

/// Everything a service run is parameterised by. All fields have sensible
/// defaults; the `service_drill` binary maps `DF_SERVICE_*` knobs onto them.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Number of independent shards (each with its own arena and machine).
    pub shards: usize,
    /// Worker pids per shard.
    pub workers_per_shard: usize,
    /// Open-loop client threads.
    pub clients: usize,
    /// Keyspace size (keys are Zipfian ranks in `[0, keys)`).
    pub keys: u64,
    /// Zipfian skew in `[0, 1)`; 0 = uniform, 0.99 = YCSB default.
    pub zipf_theta: f64,
    /// Percentage of requests that are membership probes.
    pub read_pct: u32,
    /// Minimum requests per client (clients continue past this until the
    /// drill schedule completes).
    pub ops_per_client: u64,
    /// Kill-restart drills to run (0 = pure throughput run).
    pub kills: usize,
    /// Every Nth drill crashes the full system instead of one shard
    /// (0 = shard-local only).
    pub full_system_every: usize,
    /// Recovery deadline a drill must beat to count as `within_deadline`.
    pub recovery_deadline: Duration,
    /// Serving time between consecutive drills.
    pub kill_spacing: Duration,
    /// Per-shard request queue capacity (backpressure bound).
    pub queue_cap: usize,
    /// Drain bound for the final oracle walk.
    pub drain_cap: usize,
    /// Master seed; client `c` streams from `seed + c`.
    pub seed: u64,
    /// Router retry/backoff policy for down or saturated shards.
    pub retry: RetryPolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 4,
            workers_per_shard: 2,
            clients: 2,
            keys: 1 << 20,
            zipf_theta: 0.99,
            read_pct: 50,
            ops_per_client: 20_000,
            kills: 6,
            full_system_every: 3,
            recovery_deadline: Duration::from_secs(2),
            kill_spacing: Duration::from_millis(25),
            queue_cap: 1024,
            drain_cap: 1 << 20,
            seed: 0x5eed,
            retry: RetryPolicy::default(),
        }
    }
}

/// Outcome of a full service run.
#[derive(Debug)]
pub struct ServiceReport {
    /// Per-shard life reports (oracle verdicts included).
    pub shards: Vec<ShardReport>,
    /// One record per executed drill.
    pub drills: Vec<DrillRecord>,
    /// Merged client-side routing stats.
    pub router: RouterStats,
    /// End-to-end wall time of the run.
    pub wall: Duration,
    /// Service-level violations (recovery watchdog timeouts etc.); per-shard
    /// exactly-once violations live in the shard reports.
    pub violations: Vec<String>,
}

impl ServiceReport {
    /// Total acknowledged operations across shards.
    pub fn completed(&self) -> u64 {
        self.shards.iter().map(|s| s.completed).sum()
    }

    /// Aggregate latency across all shards.
    pub fn aggregate_latency(&self) -> LatencyHistogram {
        let mut all = LatencyHistogram::new();
        for s in &self.shards {
            all.merge(&s.latency);
        }
        all
    }

    /// Aggregate percentiles (convenience for reporting).
    pub fn aggregate_percentiles(&self) -> Percentiles {
        self.aggregate_latency().percentiles()
    }

    /// Every violation in one list: service-level, per-shard oracle, and
    /// drill deadline misses.
    pub fn all_violations(&self) -> Vec<String> {
        let mut out = self.violations.clone();
        for s in &self.shards {
            out.extend(s.violations.iter().cloned());
        }
        for d in &self.drills {
            if !d.within_deadline {
                out.push(format!(
                    "drill {} ({}): recovery took {:?}, past the deadline",
                    d.index,
                    d.kind.label(),
                    d.total
                ));
            }
        }
        out
    }

    /// `true` iff the run is clean: no violations and every drill recovered
    /// on deadline.
    pub fn ok(&self) -> bool {
        self.all_violations().is_empty()
    }
}

fn wait_serving(shard: &ShardShared, timeout: Duration) -> bool {
    let t0 = Instant::now();
    while !shard.is_serving() {
        if t0.elapsed() > timeout {
            return false;
        }
        thread::sleep(Duration::from_micros(200));
    }
    true
}

/// The recovery watchdog bound: a shard that is not serving again within this
/// many deadlines is reported as a violation and the drill schedule aborts.
const WATCHDOG_DEADLINES: u32 = 10;

/// Run one drill against `shards`, returning its record (or a violation
/// string if a victim missed the watchdog).
fn run_drill(
    shards: &[ShardShared],
    index: usize,
    kind: DrillKind,
    victim: usize,
    deadline: Duration,
) -> Result<DrillRecord, String> {
    let watchdog = deadline * WATCHDOG_DEADLINES;
    let healthy_before: u64 = shards
        .iter()
        .filter(|s| kind == DrillKind::ShardLocal && s.id != victim)
        .map(|s| s.completed_ops())
        .sum();
    let kill_at = Instant::now();
    match kind {
        DrillKind::ShardLocal => {
            if !shards[victim].request_kill() {
                return Err(format!("drill {index}: victim {victim} refused the kill while serving"));
            }
            if !wait_serving(&shards[victim], watchdog) {
                return Err(format!(
                    "drill {index}: shard {victim} not serving {watchdog:?} after the kill"
                ));
            }
            let (detect, replay, total) = shards[victim]
                .last_recovery()
                .ok_or_else(|| format!("drill {index}: shard {victim} recorded no recovery"))?;
            let healthy_after: u64 = shards
                .iter()
                .filter(|s| s.id != victim)
                .map(|s| s.completed_ops())
                .sum();
            Ok(DrillRecord {
                index,
                kind,
                victim,
                detect,
                replay,
                total,
                healthy_ops_during_outage: healthy_after - healthy_before,
                within_deadline: total <= deadline,
            })
        }
        DrillKind::FullSystem => {
            for s in shards {
                // A shard that slipped out of Serving here would mean a
                // concurrent kill — the drill engine is the only killer, and
                // it waited for all-serving before this drill.
                if !s.request_kill() {
                    return Err(format!("drill {index}: shard {} refused the system kill", s.id));
                }
            }
            for s in shards {
                if !wait_serving(s, watchdog) {
                    return Err(format!(
                        "drill {index}: shard {} not serving {watchdog:?} after the system kill",
                        s.id
                    ));
                }
            }
            let total = kill_at.elapsed();
            // Detect is the slowest shard's kill → quiesce; replay is the
            // rest of the outage (until the last shard serves again).
            let detect = shards
                .iter()
                .filter_map(|s| s.last_recovery())
                .map(|(d, _, _)| d)
                .max()
                .unwrap_or_default();
            Ok(DrillRecord {
                index,
                kind,
                victim,
                detect,
                replay: total.saturating_sub(detect),
                total,
                healthy_ops_during_outage: 0,
                within_deadline: total <= deadline,
            })
        }
    }
}

/// Run the service end to end: bring up the shards, drive traffic, execute
/// the drill schedule, shut down gracefully, and collect every report.
pub fn run_service(cfg: &ServiceConfig) -> ServiceReport {
    assert!(cfg.shards >= 1 && cfg.workers_per_shard >= 1 && cfg.clients >= 1);
    let start = Instant::now();
    let shards: Vec<ShardShared> = (0..cfg.shards)
        .map(|i| ShardShared::new(i, cfg.queue_cap, start))
        .collect();
    let drills_done = AtomicBool::new(false);
    let mut violations = Vec::new();
    let (shard_reports, router_stats, drills) = thread::scope(|s| {
        let executors: Vec<_> = shards
            .iter()
            .map(|shard| s.spawn(|| run_shard(shard, cfg.workers_per_shard, cfg.drain_cap)))
            .collect();
        let zipf = Zipfian::new(cfg.keys, cfg.zipf_theta);
        let clients: Vec<_> = (0..cfg.clients)
            .map(|c| {
                let (shards, zipf, drills_done) = (&shards, zipf.clone(), &drills_done);
                s.spawn(move || {
                    let mut gen = RequestGen::new(cfg.seed + c as u64, zipf, cfg.read_pct);
                    let mut router = Router::new(shards, cfg.retry);
                    let mut issued = 0u64;
                    while issued < cfg.ops_per_client || !drills_done.load(Ordering::Relaxed) {
                        let _ = router.submit(gen.next_op());
                        issued += 1;
                    }
                    router.stats
                })
            })
            .collect();
        // ---- the drill schedule runs on this thread ------------------------
        let mut drills = Vec::new();
        let watchdog = cfg.recovery_deadline * WATCHDOG_DEADLINES;
        for index in 0..cfg.kills {
            if !shards.iter().all(|sh| wait_serving(sh, watchdog)) {
                violations.push(format!("drill {index}: service never reached all-serving"));
                break;
            }
            thread::sleep(cfg.kill_spacing);
            let kind = if cfg.full_system_every > 0 && (index + 1) % cfg.full_system_every == 0 {
                DrillKind::FullSystem
            } else {
                DrillKind::ShardLocal
            };
            let victim = index % cfg.shards;
            match run_drill(&shards, index, kind, victim, cfg.recovery_deadline) {
                Ok(rec) => drills.push(rec),
                Err(v) => {
                    violations.push(v);
                    break;
                }
            }
        }
        // SeqCst: clients poll this flag against the shard lifecycle's
        // total order; they must not outlive the drills they interleave with.
        drills_done.store(true, Ordering::SeqCst);
        let router_stats = clients.into_iter().fold(RouterStats::default(), |mut acc, c| {
            let st = c.join().expect("client panicked");
            acc.accepted += st.accepted;
            acc.degraded += st.degraded;
            acc.retries += st.retries;
            acc
        });
        for shard in &shards {
            shard.request_stop();
        }
        let shard_reports: Vec<ShardReport> = executors
            .into_iter()
            .map(|e| e.join().expect("shard executor panicked"))
            .collect();
        (shard_reports, router_stats, drills)
    });
    ServiceReport {
        shards: shard_reports,
        drills,
        router: router_stats,
        wall: start.elapsed(),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::install_quiet_crash_hook;

    #[test]
    fn bounded_drill_run_is_clean_and_timed() {
        install_quiet_crash_hook();
        let cfg = ServiceConfig {
            shards: 2,
            workers_per_shard: 2,
            clients: 2,
            keys: 1 << 16,
            zipf_theta: 0.9,
            read_pct: 30,
            ops_per_client: 2_000,
            kills: 3,
            full_system_every: 3,
            recovery_deadline: Duration::from_secs(5),
            kill_spacing: Duration::from_millis(15),
            queue_cap: 256,
            drain_cap: 1 << 18,
            seed: 42,
            retry: RetryPolicy {
                max_attempts: 3,
                initial_backoff: Duration::from_micros(50),
                max_backoff: Duration::from_millis(1),
            },
        };
        let report = run_service(&cfg);
        assert!(report.ok(), "violations: {:?}", report.all_violations());
        assert_eq!(report.drills.len(), 3);
        // Drills 0 and 1 are shard-local, drill 2 is the full-system crash.
        assert_eq!(report.drills[0].kind, DrillKind::ShardLocal);
        assert_eq!(report.drills[1].kind, DrillKind::ShardLocal);
        assert_eq!(report.drills[2].kind, DrillKind::FullSystem);
        for d in &report.drills {
            assert!(d.total >= d.detect, "drill {d:?}");
            assert!(d.within_deadline);
        }
        // Victims alternate round-robin across the shard-local drills.
        assert_ne!(report.drills[0].victim, report.drills[1].victim);
        // Traffic kept flowing: every shard completed work and acknowledged
        // counts match the routers' accepted counts.
        assert!(report.completed() > 0);
        for sh in &report.shards {
            assert!(sh.completed > 0, "shard {} served nothing", sh.id);
        }
        assert_eq!(report.completed(), report.router.accepted);
        assert_eq!(report.aggregate_percentiles().count, report.completed());
        // The healthy shard kept serving during at least one local outage.
        let healthy: u64 = report
            .drills
            .iter()
            .filter(|d| d.kind == DrillKind::ShardLocal)
            .map(|d| d.healthy_ops_during_outage)
            .sum();
        assert!(healthy > 0, "no healthy-shard progress observed during outages");
    }

    #[test]
    fn no_kill_run_matches_issued_traffic_exactly() {
        let cfg = ServiceConfig {
            shards: 2,
            workers_per_shard: 1,
            clients: 1,
            keys: 512,
            zipf_theta: 0.0,
            read_pct: 50,
            ops_per_client: 1_000,
            kills: 0,
            kill_spacing: Duration::from_millis(1),
            queue_cap: 64,
            drain_cap: 4096,
            seed: 7,
            ..ServiceConfig::default()
        };
        let report = run_service(&cfg);
        assert!(report.ok(), "violations: {:?}", report.all_violations());
        assert!(report.drills.is_empty());
        assert_eq!(report.router.accepted + report.router.degraded, 1_000);
        assert_eq!(report.completed(), report.router.accepted);
        for sh in &report.shards {
            assert_eq!(sh.incarnations, 1);
        }
    }
}
