//! Key-hashed request routing with bounded retry and graceful degradation.
//!
//! The router is the client-facing edge: it picks the shard that owns a key
//! (stateless hash so the Zipfian head spreads across shards), and turns a
//! down or saturated shard into a bounded retry-with-backoff followed by a
//! [`RouteError::Degraded`] answer — never an unbounded block. Healthy shards
//! stay reachable the whole time; only traffic for the victim degrades.

use std::thread;
use std::time::{Duration, Instant};

use structs::StructOp;

use crate::generator::{hash_key, op_key};
use crate::shard::{EnqueueError, Request, ShardShared};

/// Routing outcome for a refused request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteError {
    /// The owning shard stayed down (or full) through every retry; the
    /// request was dropped after bounded backoff. Carries the shard index.
    Degraded(usize),
}

/// Retry/backoff policy for requests whose shard is down or saturated.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Maximum enqueue attempts before giving up (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each retry.
    pub initial_backoff: Duration,
    /// Cap on a single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            initial_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(5),
        }
    }
}

/// Per-client routing statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct RouterStats {
    /// Requests accepted by a shard queue.
    pub accepted: u64,
    /// Requests dropped as [`RouteError::Degraded`].
    pub degraded: u64,
    /// Individual retry sleeps taken (accepted-after-retry included).
    pub retries: u64,
}

/// A stateless router over the shard set. Cheap to clone per client thread
/// (stats are per-instance; merge them at the end).
#[derive(Debug)]
pub struct Router<'a> {
    shards: &'a [ShardShared],
    policy: RetryPolicy,
    /// Local stats for this router instance.
    pub stats: RouterStats,
}

impl<'a> Router<'a> {
    /// A router over `shards` with the given retry policy.
    pub fn new(shards: &'a [ShardShared], policy: RetryPolicy) -> Router<'a> {
        assert!(!shards.is_empty());
        assert!(policy.max_attempts >= 1);
        Router {
            shards,
            policy,
            stats: RouterStats::default(),
        }
    }

    /// The shard index owning `key`.
    pub fn shard_of(&self, key: u64) -> usize {
        (hash_key(key) % self.shards.len() as u64) as usize
    }

    /// Submit one request: bounded retry-with-backoff, then `Degraded`.
    /// Returns the owning shard index on acceptance.
    pub fn submit(&mut self, op: StructOp) -> Result<usize, RouteError> {
        let idx = self.shard_of(op_key(op));
        let shard = &self.shards[idx];
        let req = Request {
            op,
            enqueued_at: Instant::now(),
        };
        let mut backoff = self.policy.initial_backoff;
        for attempt in 0..self.policy.max_attempts {
            match shard.try_enqueue(req) {
                Ok(()) => {
                    self.stats.accepted += 1;
                    return Ok(idx);
                }
                Err(EnqueueError::Down | EnqueueError::Full) => {
                    if attempt + 1 == self.policy.max_attempts {
                        break;
                    }
                    self.stats.retries += 1;
                    thread::sleep(backoff);
                    backoff = (backoff * 2).min(self.policy.max_backoff);
                }
            }
        }
        self.stats.degraded += 1;
        Err(RouteError::Degraded(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::run_shard;

    #[test]
    fn routing_is_deterministic_and_spreads_keys() {
        let epoch = Instant::now();
        let shards: Vec<ShardShared> = (0..4).map(|i| ShardShared::new(i, 8, epoch)).collect();
        let r = Router::new(&shards, RetryPolicy::default());
        let mut hit = [false; 4];
        for k in 0..256u64 {
            let a = r.shard_of(k);
            assert_eq!(a, r.shard_of(k));
            hit[a] = true;
        }
        assert!(hit.iter().all(|&h| h), "256 keys must touch all 4 shards");
    }

    #[test]
    fn down_shard_degrades_after_bounded_retries_without_blocking() {
        let epoch = Instant::now();
        // One shard, never serving (fresh shards start in Recovering).
        let shards = vec![ShardShared::new(0, 8, epoch)];
        let policy = RetryPolicy {
            max_attempts: 4,
            initial_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_micros(200),
        };
        let mut r = Router::new(&shards, policy);
        let t0 = Instant::now();
        let out = r.submit(StructOp::Insert(7));
        assert_eq!(out, Err(RouteError::Degraded(0)));
        assert_eq!(r.stats.degraded, 1);
        assert_eq!(r.stats.retries, 3, "max_attempts-1 backoff sleeps");
        // Bounded: well under a second even with generous scheduling slack.
        assert!(t0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn healthy_shard_accepts_while_another_is_down() {
        let epoch = Instant::now();
        let shards: Vec<ShardShared> = (0..2).map(|i| ShardShared::new(i, 64, epoch)).collect();
        std::thread::scope(|s| {
            // Only shard 0 gets an executor; shard 1 stays down forever.
            let exec = s.spawn(|| run_shard(&shards[0], 1, 1024));
            while !shards[0].is_serving() {
                thread::sleep(Duration::from_micros(100));
            }
            let policy = RetryPolicy {
                max_attempts: 2,
                initial_backoff: Duration::from_micros(50),
                max_backoff: Duration::from_micros(50),
            };
            let mut r = Router::new(&shards, policy);
            let (mut ok, mut degraded) = (0, 0);
            for k in 0..200u64 {
                match r.submit(StructOp::Insert(k)) {
                    Ok(idx) => {
                        assert_eq!(idx, 0);
                        ok += 1;
                    }
                    Err(RouteError::Degraded(idx)) => {
                        assert_eq!(idx, 1);
                        degraded += 1;
                    }
                }
            }
            assert!(ok > 0, "healthy shard must accept");
            assert!(degraded > 0, "down shard must degrade");
            shards[0].request_stop();
            let report = exec.join().unwrap();
            assert!(report.violations.is_empty(), "{:?}", report.violations);
            assert_eq!(report.completed, ok);
        });
    }
}
