//! Sharded-service kill-restart drill runner.
//!
//! Brings up N shards over simulated persistent arenas, drives seeded Zipfian
//! traffic through the router, and executes a kill-restart drill schedule
//! (round-robin shard kills, periodically a full-system crash) while
//! measuring recovery time and tail latency. Exits nonzero on any
//! exactly-once violation or missed recovery deadline, so CI can gate on it.
//!
//! Knobs (all optional, sensible defaults):
//!
//! | variable                  | meaning                                   |
//! |---------------------------|-------------------------------------------|
//! | `DF_SERVICE_SHARDS`       | shard count                               |
//! | `DF_SERVICE_WORKERS`      | worker pids per shard                     |
//! | `DF_SERVICE_CLIENTS`      | open-loop client threads                  |
//! | `DF_SERVICE_KEYS`         | keyspace size                             |
//! | `DF_SERVICE_ZIPF`         | Zipfian theta (float, `[0,1)`)            |
//! | `DF_SERVICE_READS`        | read percentage of the mix                |
//! | `DF_SERVICE_OPS`          | minimum requests per client               |
//! | `DF_SERVICE_KILLS`        | kill-restart drills to run                |
//! | `DF_SERVICE_SYSTEM_EVERY` | every Nth drill is full-system (0=never)  |
//! | `DF_SERVICE_DEADLINE_MS`  | recovery deadline per drill               |
//! | `DF_SERVICE_SPACING_MS`   | serving time between drills               |
//! | `DF_SERVICE_SEED`         | master seed                               |
//!
//! With `DF_JSON` set, emits `BENCH_service.json` (schema
//! `delayfree-bench-v1`): one row per shard, one aggregate row, and one row
//! per drill with recovery timings as extras.

use std::process::ExitCode;
use std::time::Duration;

use bench::json::{emit, JsonRow};
use pmem::install_quiet_crash_hook;
use service::{run_service, DrillKind, Percentiles, ServiceConfig, ServiceReport};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .map(|v| v.parse().unwrap_or_else(|_| panic!("{name} must be an integer, got {v:?}")))
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .map(|v| v.parse().unwrap_or_else(|_| panic!("{name} must be a float, got {v:?}")))
        .unwrap_or(default)
}

fn config_from_env() -> ServiceConfig {
    let defaults = ServiceConfig::default();
    ServiceConfig {
        shards: env_u64("DF_SERVICE_SHARDS", defaults.shards as u64) as usize,
        workers_per_shard: env_u64("DF_SERVICE_WORKERS", defaults.workers_per_shard as u64) as usize,
        clients: env_u64("DF_SERVICE_CLIENTS", defaults.clients as u64) as usize,
        keys: env_u64("DF_SERVICE_KEYS", defaults.keys),
        zipf_theta: env_f64("DF_SERVICE_ZIPF", defaults.zipf_theta),
        read_pct: env_u64("DF_SERVICE_READS", defaults.read_pct as u64) as u32,
        ops_per_client: env_u64("DF_SERVICE_OPS", defaults.ops_per_client),
        kills: env_u64("DF_SERVICE_KILLS", defaults.kills as u64) as usize,
        full_system_every: env_u64("DF_SERVICE_SYSTEM_EVERY", defaults.full_system_every as u64) as usize,
        recovery_deadline: Duration::from_millis(env_u64(
            "DF_SERVICE_DEADLINE_MS",
            defaults.recovery_deadline.as_millis() as u64,
        )),
        kill_spacing: Duration::from_millis(env_u64(
            "DF_SERVICE_SPACING_MS",
            defaults.kill_spacing.as_millis() as u64,
        )),
        seed: env_u64("DF_SERVICE_SEED", defaults.seed),
        ..defaults
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn print_report(cfg: &ServiceConfig, report: &ServiceReport) {
    println!(
        "# service drill: {} shards x {} workers, {} clients, {} keys (theta {}), {}% reads",
        cfg.shards, cfg.workers_per_shard, cfg.clients, cfg.keys, cfg.zipf_theta, cfg.read_pct
    );
    println!(
        "{:<8} {:>10} {:>8} {:>6} {:>10} {:>10} {:>10}",
        "shard", "completed", "kills", "incarn", "p50_us", "p99_us", "p999_us"
    );
    for sh in &report.shards {
        let p = sh.latency.percentiles();
        println!(
            "{:<8} {:>10} {:>8} {:>6} {:>10.1} {:>10.1} {:>10.1}",
            format!("shard{}", sh.id),
            sh.completed,
            sh.kills_mid_op,
            sh.incarnations,
            p.p50_ns as f64 / 1e3,
            p.p99_ns as f64 / 1e3,
            p.p999_ns as f64 / 1e3,
        );
    }
    let agg = report.aggregate_percentiles();
    let wall = report.wall.as_secs_f64();
    println!(
        "aggregate: {} ops in {:.2}s ({:.0} ops/s), p50 {:.1}us p99 {:.1}us p999 {:.1}us max {:.1}ms",
        report.completed(),
        wall,
        report.completed() as f64 / wall,
        agg.p50_ns as f64 / 1e3,
        agg.p99_ns as f64 / 1e3,
        agg.p999_ns as f64 / 1e3,
        agg.max_ns as f64 / 1e6,
    );
    println!(
        "router: {} accepted, {} degraded, {} retries",
        report.router.accepted, report.router.degraded, report.router.retries
    );
    if !report.drills.is_empty() {
        println!(
            "{:<8} {:>8} {:>8} {:>12} {:>12} {:>12} {:>14} {:>8}",
            "drill", "kind", "victim", "detect_ms", "replay_ms", "total_ms", "healthy_ops", "ontime"
        );
        for d in &report.drills {
            println!(
                "{:<8} {:>8} {:>8} {:>12.3} {:>12.3} {:>12.3} {:>14} {:>8}",
                d.index,
                d.kind.label(),
                d.victim,
                ms(d.detect),
                ms(d.replay),
                ms(d.total),
                d.healthy_ops_during_outage,
                if d.within_deadline { "yes" } else { "MISS" },
            );
        }
    }
    for v in report.all_violations() {
        println!("VIOLATION: {v}");
    }
}

fn json_rows(cfg: &ServiceConfig, report: &ServiceReport) -> Vec<JsonRow> {
    let wall = report.wall.as_secs_f64().max(1e-9);
    let lat = |p: &Percentiles, row: JsonRow| {
        row.with("p50_ns", p.p50_ns as f64)
            .with("p99_ns", p.p99_ns as f64)
            .with("p999_ns", p.p999_ns as f64)
            .with("max_ns", p.max_ns as f64)
    };
    let mut rows = Vec::new();
    for sh in &report.shards {
        let p = sh.latency.percentiles();
        rows.push(
            lat(
                &p,
                JsonRow::new(format!("shard{}", sh.id), cfg.workers_per_shard, sh.completed as f64 / wall / 1e6),
            )
            .with("incarnations", sh.incarnations as f64)
            .with("kills_mid_op", sh.kills_mid_op as f64)
            .with("resumed_ops", sh.resumed_ops as f64)
            .with("reexecuted_ops", sh.reexecuted_ops as f64),
        );
    }
    let agg = report.aggregate_percentiles();
    rows.push(
        lat(
            &agg,
            JsonRow::new("aggregate", cfg.shards * cfg.workers_per_shard, report.completed() as f64 / wall / 1e6),
        )
        .with("degraded", report.router.degraded as f64)
        .with("retries", report.router.retries as f64),
    );
    for d in &report.drills {
        rows.push(
            JsonRow::new(format!("drill/{}", d.kind.label()), cfg.workers_per_shard, 0.0)
                .with("crashes_injected", if d.kind == DrillKind::FullSystem { cfg.shards as f64 } else { 1.0 })
                .with("detect_ms", ms(d.detect))
                .with("replay_ms", ms(d.replay))
                .with("recovery_ms", ms(d.total))
                .with("healthy_ops_during_outage", d.healthy_ops_during_outage as f64)
                .with("within_deadline", if d.within_deadline { 1.0 } else { 0.0 }),
        );
    }
    rows
}

fn main() -> ExitCode {
    install_quiet_crash_hook();
    let cfg = config_from_env();
    let report = run_service(&cfg);
    print_report(&cfg, &report);
    let params = [
        ("shards", cfg.shards as u64),
        ("workers", cfg.workers_per_shard as u64),
        ("clients", cfg.clients as u64),
        ("keys", cfg.keys),
        ("zipf_centi_theta", (cfg.zipf_theta * 100.0) as u64),
        ("read_pct", cfg.read_pct as u64),
        ("ops_per_client", cfg.ops_per_client),
        ("kills", cfg.kills as u64),
        ("system_every", cfg.full_system_every as u64),
        ("deadline_ms", cfg.recovery_deadline.as_millis() as u64),
        ("seed", cfg.seed),
    ];
    emit("service", &params, report.wall.as_secs_f64(), &json_rows(&cfg, &report));
    if report.ok() {
        println!("# service drill clean: {} drills, 0 violations", report.drills.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("# service drill FAILED: {} violations", report.all_violations().len());
        ExitCode::FAILURE
    }
}
