//! `fig_map` — Zipf-skewed million-key mixed workload on the detectable hash
//! map family (Izraelevitz / General / Normalized), emitting `BENCH_map.json`
//! under `DF_JSON`. See [`service::map_bench`] for the `DF_MAP_*` knobs.

fn main() {
    service::map_bench::run_map_figure();
}
