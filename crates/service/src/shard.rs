//! One shard of the service: a persistent arena (the medium), a detectable
//! [`GeneralSet`] over it, and a pool of worker incarnations that serve
//! requests across kill-restart cycles.
//!
//! # Shard lifecycle
//!
//! A shard executor owns the arena for the shard's whole life and runs a loop
//! of *incarnations*. Each incarnation builds a machine over the surviving
//! arena ([`PMem::new`] the first time, [`pmem::PMem::with_arena`] after a
//! kill), spawns one OS thread per worker pid, and serves until the shard is
//! killed or the service stops:
//!
//! ```text
//!   Serving --(kill flag)--> Draining --(workers unwound+joined, crash_all)-->
//!   Recovering --(attach + resume in-flight ops, barrier)--> Serving
//! ```
//!
//! A kill is delivered two ways at once: workers poll the flag between
//! requests, and a [`CrashSchedule`] (`KillSwitch`) raises a genuine
//! [`CrashSignal`](pmem::CrashSignal) at the next simulated instruction of any
//! worker that is mid-operation — with
//! [`set_unwind_on_crash`](capsules::CapsuleRuntime::set_unwind_on_crash) the
//! signal unwinds the whole incarnation instead of being absorbed, losing its
//! volatile state exactly as the PPM model prescribes. Once every worker has
//! quiesced the executor applies the machine-level damage (`crash_all`: every
//! unflushed line rolls back), drops the machine, and starts the next
//! incarnation over the same arena.
//!
//! # Exactly-once across kills
//!
//! Every request is stamped with a per-worker ticket that the operation's
//! entry boundary persists next to its arguments. On restart a worker
//! re-attaches its capsule frame and calls
//! [`resume_interrupted`](structs::GeneralSetHandle::resume_interrupted):
//! a matching ticket settles the in-flight request with its exactly-once
//! result (resumed to completion, or read back if it had finished but the ack
//! was lost); a stale ticket proves the kill hit before the entry boundary, so
//! nothing reached the structure and the request is executed fresh. The
//! per-key balance oracle at shutdown checks the sum of acknowledged effects
//! against the drained structure.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::time::{Duration, Instant};

use capsules::BoundaryStyle;
use pmem::{catch_crash, CacheAligned, CrashSchedule, MemConfig, Mode, PMem};
use structs::{GeneralSet, StructHandle, StructOp};

use crate::metrics::LatencyHistogram;

/// Shard states (stored in an `AtomicU8`).
pub const STATE_SERVING: u8 = 0;
/// A kill was requested; workers are unwinding.
pub const STATE_DRAINING: u8 = 1;
/// Workers quiesced, machine crashed; replaying recovery state.
pub const STATE_RECOVERING: u8 = 2;
/// Graceful shutdown complete.
pub const STATE_STOPPED: u8 = 3;

/// One queued request.
#[derive(Clone, Copy, Debug)]
pub struct Request {
    /// The keyed set operation to apply.
    pub op: StructOp,
    /// Submission time (latency is measured enqueue → ack, so downtime spent
    /// buffered during a drill shows up in the tail).
    pub enqueued_at: Instant,
}

/// Why an enqueue was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnqueueError {
    /// The shard is not serving (killed / recovering / stopped).
    Down,
    /// The shard is serving but its queue is at capacity.
    Full,
}

/// The part of a shard visible to the router and the drill engine. The
/// executor side (arena, structure, worker state) lives in [`run_shard`].
#[derive(Debug)]
pub struct ShardShared {
    /// Shard index.
    pub id: usize,
    state: AtomicU8,
    kill: Arc<AtomicBool>,
    stop: AtomicBool,
    /// Timestamps of the current kill cycle, as nanoseconds since `epoch`.
    kill_at_ns: AtomicU64,
    quiesced_at_ns: AtomicU64,
    ready_at_ns: AtomicU64,
    /// Operations completed (acknowledged) by this shard so far.
    completed: AtomicU64,
    queue: Mutex<VecDeque<Request>>,
    queue_cond: Condvar,
    queue_cap: usize,
    epoch: Instant,
}

impl ShardShared {
    /// A new shard handle in the `Serving` state.
    pub fn new(id: usize, queue_cap: usize, epoch: Instant) -> ShardShared {
        ShardShared {
            id,
            state: AtomicU8::new(STATE_RECOVERING),
            kill: Arc::new(AtomicBool::new(false)),
            stop: AtomicBool::new(false),
            kill_at_ns: AtomicU64::new(0),
            quiesced_at_ns: AtomicU64::new(0),
            ready_at_ns: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            queue: Mutex::new(VecDeque::new()),
            queue_cond: Condvar::new(),
            queue_cap,
            epoch,
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Current lifecycle state (one of the `STATE_*` constants).
    pub fn state(&self) -> u8 {
        // SeqCst: lifecycle reads join the single total order the transition
        // stores write — routers must never see SERVING after a kill's
        // DRAINING became visible to any other observer.
        self.state.load(Ordering::SeqCst)
    }

    /// Whether the shard currently accepts requests.
    pub fn is_serving(&self) -> bool {
        self.state() == STATE_SERVING
    }

    /// Operations acknowledged so far (monotone; the drill engine samples this
    /// to prove healthy shards keep serving during a victim's outage).
    pub fn completed_ops(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Ask the shard to crash. Returns `false` if it was not serving (already
    /// killed, recovering, or stopped). The actual damage is applied by the
    /// executor once the workers have unwound.
    pub fn request_kill(&self) -> bool {
        if self
            .state
            // SeqCst (both orderings): the SERVING -> DRAINING transition
            // is the linearization point of a kill; it must be totally
            // ordered against every `state()` read and rival kill request.
            .compare_exchange(STATE_SERVING, STATE_DRAINING, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return false;
        }
        // SeqCst: the timestamp must be visible before the kill flag in the
        // one total order workers poll, so `last_recovery` never reads a
        // cycle whose start time is still zero.
        self.kill_at_ns.store(self.now_ns(), Ordering::SeqCst);
        // SeqCst: ordered after the timestamp store above.
        self.kill.store(true, Ordering::SeqCst);
        // Wake parked workers so idle shards detect the kill promptly.
        self.queue_cond.notify_all();
        true
    }

    /// Begin graceful shutdown: workers drain the queue and exit.
    pub fn request_stop(&self) {
        // SeqCst: stop joins the same total order as the kill/lifecycle
        // flags so a worker cannot drain past a stop it already observed.
        self.stop.store(true, Ordering::SeqCst);
        self.queue_cond.notify_all();
    }

    /// The detect / replay / total durations of the most recent completed kill
    /// cycle (kill → quiesced, quiesced → serving, kill → serving).
    pub fn last_recovery(&self) -> Option<(Duration, Duration, Duration)> {
        // SeqCst: the drill engine reads the timestamps in the same total
        // order the executor wrote them, so the monotonicity check below
        // distinguishes a half-written cycle from a corrupt one.
        let kill = self.kill_at_ns.load(Ordering::SeqCst);
        let quiesced = self.quiesced_at_ns.load(Ordering::SeqCst); // SeqCst: as above
        let ready = self.ready_at_ns.load(Ordering::SeqCst); // SeqCst: as above
        if kill == 0 || quiesced < kill || ready < quiesced {
            return None;
        }
        Some((
            Duration::from_nanos(quiesced - kill),
            Duration::from_nanos(ready - quiesced),
            Duration::from_nanos(ready - kill),
        ))
    }

    /// Try to enqueue a request (the router's single entry point).
    pub fn try_enqueue(&self, req: Request) -> Result<(), EnqueueError> {
        if !self.is_serving() {
            return Err(EnqueueError::Down);
        }
        let mut q = self.queue.lock().unwrap();
        if q.len() >= self.queue_cap {
            return Err(EnqueueError::Full);
        }
        q.push_back(req);
        drop(q);
        self.queue_cond.notify_one();
        Ok(())
    }

    /// Worker-side dequeue with a bounded wait (so kill/stop flags are polled).
    fn pop(&self, timeout: Duration) -> Option<Request> {
        let mut q = self.queue.lock().unwrap();
        if let Some(req) = q.pop_front() {
            return Some(req);
        }
        let (mut q, _) = self.queue_cond.wait_timeout(q, timeout).unwrap();
        q.pop_front()
    }

    fn queue_len(&self) -> usize {
        self.queue.lock().unwrap().len()
    }
}

/// Fires a genuine crash at the next simulated instruction once the shard's
/// kill flag is up. Stays armed forever — the flag decides.
#[derive(Debug)]
struct KillSwitch {
    kill: Arc<AtomicBool>,
}

impl CrashSchedule for KillSwitch {
    fn should_crash(&mut self, _step: u64) -> bool {
        self.kill.load(Ordering::Relaxed)
    }

    fn is_armed(&self) -> bool {
        true
    }
}

/// The request a worker is currently applying (volatile bookkeeping mirrored
/// by the persisted ticket; see the module docs).
#[derive(Clone, Copy, Debug)]
struct InFlight {
    ticket: u64,
    op: StructOp,
    enqueued_at: Instant,
}

/// Per-key acknowledged effects (successful inserts / successful removes).
#[derive(Clone, Copy, Debug, Default)]
struct KeyAcks {
    ins: u64,
    rem: u64,
}

/// Executor-owned per-worker state that survives incarnations (the OS process
/// outlives the simulated process, exactly like a restarting server).
#[derive(Default)]
struct WorkerSlot {
    next_ticket: u64,
    inflight: Option<InFlight>,
    acks: HashMap<u64, KeyAcks>,
    reads: u64,
    latency: LatencyHistogram,
    /// Kills that caught this worker mid-operation (unwound incarnations).
    killed_mid_op: u64,
    /// In-flight requests settled by ticket-matched resumption.
    resumed: u64,
    /// In-flight requests re-executed because the kill predated their entry
    /// boundary.
    reexecuted: u64,
}

enum ExitCause {
    Stopped,
    Killed,
}

/// Final report of one shard's life.
#[derive(Debug)]
pub struct ShardReport {
    /// Shard index.
    pub id: usize,
    /// Acknowledged operations (including membership probes).
    pub completed: u64,
    /// Membership probes among them.
    pub reads: u64,
    /// Enqueue → ack latency across all workers.
    pub latency: LatencyHistogram,
    /// Machine incarnations (1 = never killed).
    pub incarnations: u64,
    /// Workers caught mid-operation by a kill (summed over workers).
    pub kills_mid_op: u64,
    /// In-flight requests settled by resumption after a kill.
    pub resumed_ops: u64,
    /// In-flight requests re-executed after a kill (pre-entry-boundary kill).
    pub reexecuted_ops: u64,
    /// Keys left in the structure at shutdown.
    pub final_len: usize,
    /// Oracle violations (empty = exactly-once held).
    pub violations: Vec<String>,
}

/// Settle one acknowledged request into the worker's books.
fn ack(slot: &mut WorkerSlot, shard: &ShardShared, inflight: InFlight, result: bool) {
    match inflight.op {
        StructOp::Insert(k) => {
            if result {
                slot.acks.entry(k).or_default().ins += 1;
            }
        }
        StructOp::Remove(k) => {
            if result {
                slot.acks.entry(k).or_default().rem += 1;
            }
        }
        StructOp::Contains(_) => slot.reads += 1,
        other => unreachable!("service request {other:?}"),
    }
    slot.latency.record(inflight.enqueued_at.elapsed());
    shard.completed.fetch_add(1, Ordering::Relaxed);
}

/// One worker incarnation: recover what the previous incarnation left behind,
/// signal readiness, then serve until killed or stopped.
fn worker_incarnation(
    shard: &ShardShared,
    set: &GeneralSet,
    mem: &PMem,
    pid: usize,
    slot: &mut WorkerSlot,
    first: bool,
    ready: &Barrier,
) -> ExitCause {
    let t = mem.thread(pid);
    let mut h = if first {
        set.handle(&t)
    } else {
        set.attach_handle(&t)
    };
    h.runtime_mut().set_unwind_on_crash(true);
    if !first {
        // Replay phase: settle the request the kill interrupted (if any).
        let resumption = h.resume_interrupted();
        if let Some(inflight) = slot.inflight.take() {
            match resumption {
                Some(r) if r.ticket == inflight.ticket => {
                    debug_assert_eq!(r.op, inflight.op, "frame/ledger divergence");
                    if r.resumed {
                        slot.resumed += 1;
                    }
                    ack(slot, shard, inflight, r.result);
                }
                _ => {
                    // The kill hit before the entry boundary persisted the
                    // request: nothing reached the structure — run it fresh.
                    slot.reexecuted += 1;
                    h.set_ticket(inflight.ticket);
                    let result = h.apply(inflight.op) == Some(1);
                    ack(slot, shard, inflight, result);
                }
            }
        }
    }
    // Arm the kill switch only now: recovery itself must not be re-killed
    // (the drill engine never kills a non-serving shard).
    t.set_crash_schedule(KillSwitch {
        kill: Arc::clone(&shard.kill),
    });
    ready.wait();
    let verdict = catch_crash(|| loop {
        if shard.kill.load(Ordering::Relaxed) {
            return ExitCause::Killed;
        }
        match shard.pop(Duration::from_micros(500)) {
            Some(req) => {
                slot.next_ticket += 1;
                let inflight = InFlight {
                    ticket: slot.next_ticket,
                    op: req.op,
                    enqueued_at: req.enqueued_at,
                };
                slot.inflight = Some(inflight);
                h.set_ticket(inflight.ticket);
                // A kill can fire at any simulated instruction in here and
                // unwind the whole incarnation; the ticket protocol above
                // guarantees the request is still settled exactly once.
                let result = h.apply(inflight.op) == Some(1);
                ack(slot, shard, inflight, result);
                slot.inflight = None;
            }
            None => {
                if shard.stop.load(Ordering::Relaxed) && shard.queue_len() == 0 {
                    return ExitCause::Stopped;
                }
            }
        }
    });
    t.disarm_crashes();
    match verdict {
        Ok(cause) => cause,
        Err(_) => {
            slot.killed_mid_op += 1;
            ExitCause::Killed
        }
    }
}

/// Run a shard to completion: incarnation loop, kill-restart cycles, graceful
/// shutdown, final exactly-once oracle. Blocks until [`ShardShared::request_stop`]
/// has been honoured; returns the shard's life report.
pub fn run_shard(shard: &ShardShared, workers: usize, drain_cap: usize) -> ShardReport {
    assert!(workers >= 1);
    let mut mem = PMem::new(MemConfig::new(workers).mode(Mode::SharedCache));
    let arena = mem.arena_handle();
    let set = {
        let t0 = mem.thread(0);
        GeneralSet::new(&t0, workers, true, BoundaryStyle::General)
    };
    // Workers mutate their own slot concurrently from sibling threads; the
    // cache-line padding keeps one worker's ticket/ack bookkeeping from
    // invalidating its neighbours' lines.
    let mut slots: Vec<CacheAligned<WorkerSlot>> =
        (0..workers).map(|_| CacheAligned::default()).collect();
    let mut incarnations = 0u64;
    let mut first = true;
    loop {
        incarnations += 1;
        let ready = Barrier::new(workers + 1);
        let killed = std::thread::scope(|s| {
            let handles: Vec<_> = slots
                .iter_mut()
                .enumerate()
                .map(|(pid, slot)| {
                    let (shard, set, mem, ready) = (&*shard, &set, &mem, &ready);
                    s.spawn(move || worker_incarnation(shard, set, mem, pid, slot, first, ready))
                })
                .collect();
            ready.wait();
            // Every worker has recovered and armed its kill switch: open for
            // business and timestamp readiness for the drill engine.
            // SeqCst: readiness timestamp first, then SERVING — in the
            // lifecycle's single total order, so a router that sees SERVING
            // finds the recovery timestamps already complete.
            shard.ready_at_ns.store(shard.now_ns(), Ordering::SeqCst);
            // SeqCst: ordered after the timestamp store above.
            shard.state.store(STATE_SERVING, Ordering::SeqCst);
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .any(|cause| matches!(cause, ExitCause::Killed))
        });
        first = false;
        if killed {
            // All workers are joined: the machine is quiescent. Apply the
            // crash damage (unflushed lines roll back), tear the machine down,
            // and bring a fresh incarnation up over the surviving arena.
            // SeqCst: quiescence timestamp, then RECOVERING — same total
            // order as the SERVING transition above.
            shard.quiesced_at_ns.store(shard.now_ns(), Ordering::SeqCst);
            // SeqCst: ordered after the timestamp store above.
            shard.state.store(STATE_RECOVERING, Ordering::SeqCst);
            mem.crash_all();
            drop(mem);
            mem = PMem::with_arena(MemConfig::new(workers).mode(Mode::SharedCache), Arc::clone(&arena));
            // SeqCst: re-arms the kill switch in the lifecycle's total
            // order, after the RECOVERING transition became visible.
            shard.kill.store(false, Ordering::SeqCst);
            continue;
        }
        // SeqCst: final lifecycle transition, same total order as the rest.
        shard.state.store(STATE_STOPPED, Ordering::SeqCst);
        break;
    }
    // ----- final oracle: acknowledged effects vs. drained structure ----------
    let mut violations = Vec::new();
    let mut balance: HashMap<u64, i64> = HashMap::new();
    for slot in &slots {
        assert!(slot.inflight.is_none(), "request still in flight after stop");
        for (&k, a) in &slot.acks {
            *balance.entry(k).or_insert(0) += a.ins as i64 - a.rem as i64;
        }
    }
    let t0 = mem.thread(0);
    let mut h = set.attach_handle(&t0);
    let drained = h.drain_up_to(drain_cap);
    if drained.truncated {
        violations.push(format!(
            "shard {}: drain truncated at {} items (corrupt structure?)",
            shard.id, drain_cap
        ));
    }
    let members: std::collections::HashSet<u64> = drained.items.iter().copied().collect();
    for (&k, &net) in &balance {
        let expect = match net {
            0 => false,
            1 => true,
            other => {
                violations.push(format!(
                    "shard {}: key {k} has impossible acknowledged balance {other} (double-applied operation)",
                    shard.id
                ));
                continue;
            }
        };
        if members.contains(&k) != expect {
            violations.push(format!(
                "shard {}: key {k} balance {net} but membership {}",
                shard.id,
                members.contains(&k)
            ));
        }
    }
    for &k in &members {
        if balance.get(&k).copied().unwrap_or(0) != 1 {
            violations.push(format!(
                "shard {}: key {k} present without a surviving acknowledged insert",
                shard.id
            ));
        }
    }
    ShardReport {
        id: shard.id,
        completed: shard.completed_ops(),
        reads: slots.iter().map(|s| s.reads).sum(),
        latency: {
            let mut all = LatencyHistogram::new();
            for s in &slots {
                all.merge(&s.latency);
            }
            all
        },
        incarnations,
        kills_mid_op: slots.iter().map(|s| s.killed_mid_op).sum(),
        resumed_ops: slots.iter().map(|s| s.resumed).sum(),
        reexecuted_ops: slots.iter().map(|s| s.reexecuted).sum(),
        final_len: drained.items.len(),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::install_quiet_crash_hook;
    use std::thread;

    fn submit_all(shard: &ShardShared, ops: &[StructOp]) -> usize {
        let mut accepted = 0;
        for &op in ops {
            let req = Request {
                op,
                enqueued_at: Instant::now(),
            };
            // Bounded retry: the shard may be mid-recovery in kill tests.
            for _ in 0..20_000 {
                match shard.try_enqueue(req) {
                    Ok(()) => {
                        accepted += 1;
                        break;
                    }
                    Err(_) => thread::sleep(Duration::from_micros(50)),
                }
            }
        }
        accepted
    }

    #[test]
    fn shard_serves_and_oracle_passes_without_kills() {
        let shard = ShardShared::new(0, 1024, Instant::now());
        let report = thread::scope(|s| {
            let exec = s.spawn(|| run_shard(&shard, 2, 4096));
            while !shard.is_serving() {
                thread::sleep(Duration::from_micros(100));
            }
            let ops: Vec<StructOp> = (0..300)
                .map(|i| match i % 3 {
                    0 => StructOp::Insert(i / 3 % 20),
                    1 => StructOp::Contains(i / 3 % 20),
                    _ => StructOp::Remove(i / 3 % 20),
                })
                .collect();
            let accepted = submit_all(&shard, &ops);
            assert_eq!(accepted, ops.len());
            shard.request_stop();
            exec.join().unwrap()
        });
        assert_eq!(report.completed, 300);
        assert_eq!(report.incarnations, 1);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.latency.count() == 300);
    }

    #[test]
    fn kill_restart_cycles_preserve_exactly_once_under_traffic() {
        install_quiet_crash_hook();
        let shard = ShardShared::new(0, 1024, Instant::now());
        let report = thread::scope(|s| {
            let exec = s.spawn(|| run_shard(&shard, 2, 1 << 16));
            // Traffic: writes over a small hot keyspace to maximise the chance
            // a kill lands mid-operation.
            let traffic = s.spawn(|| {
                let mut ops = Vec::new();
                for i in 0..4000u64 {
                    let k = i % 64;
                    ops.push(if i % 2 == 0 {
                        StructOp::Insert(k)
                    } else {
                        StructOp::Remove(k)
                    });
                }
                submit_all(&shard, &ops)
            });
            // Drill: three kill cycles while traffic flows.
            for _ in 0..3 {
                while !shard.is_serving() {
                    thread::sleep(Duration::from_micros(200));
                }
                thread::sleep(Duration::from_millis(30));
                if !shard.request_kill() {
                    continue;
                }
                while !shard.is_serving() {
                    thread::sleep(Duration::from_micros(200));
                }
                let (detect, replay, total) = shard.last_recovery().expect("recovery timed");
                assert!(total >= detect && total >= replay);
            }
            let accepted = traffic.join().unwrap();
            shard.request_stop();
            let report = exec.join().unwrap();
            assert_eq!(report.completed as usize, accepted);
            report
        });
        assert!(report.incarnations >= 4, "3 kills → ≥4 incarnations, got {}", report.incarnations);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn enqueue_refuses_when_down_or_full() {
        let shard = ShardShared::new(3, 2, Instant::now());
        let req = Request {
            op: StructOp::Insert(1),
            enqueued_at: Instant::now(),
        };
        // Initial state is Recovering: down.
        assert_eq!(shard.try_enqueue(req), Err(EnqueueError::Down));
        // SeqCst: tests drive the lifecycle through its usual total order.
        shard.state.store(STATE_SERVING, Ordering::SeqCst);
        assert_eq!(shard.try_enqueue(req), Ok(()));
        assert_eq!(shard.try_enqueue(req), Ok(()));
        assert_eq!(shard.try_enqueue(req), Err(EnqueueError::Full));
        assert!(shard.request_kill());
        assert_eq!(shard.try_enqueue(req), Err(EnqueueError::Down));
        assert!(!shard.request_kill(), "second kill while draining must refuse");
    }
}
