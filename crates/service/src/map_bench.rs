//! `fig_map` — the million-key scenario: a Zipf-skewed mixed workload on the
//! detectable hash map family, reported as `BENCH_map.json`.
//!
//! This is the workload the map was built for: a keyspace of 2²⁰+ keys, a
//! YCSB-style skewed read/insert/remove mix from [`crate::generator`], the
//! bucket array growing through its crash-safe resize protocol under the
//! timed window. Each variant of the matrix (Izraelevitz / General /
//! Normalized) runs the same seeded request streams; throughput plus
//! flush/fence rates land in the usual `delayfree-bench-v1` rows.
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `DF_MAP_KEYS`        | keyspace size (Zipfian ranks)            | 1048576 |
//! | `DF_MAP_OPS`         | total timed operations across threads    | 1048576 |
//! | `DF_MAP_READ_PCT`    | membership-probe percentage of the mix   | 80 |
//! | `DF_MAP_PREFILL`     | keys inserted before the timed window    | keys/2 |
//! | `DF_MAP_BUCKETS`     | initial bucket count (power of two)      | 16384 |
//! | `DF_MAP_THREADS`     | worker threads                           | 4 |
//! | `DF_MAP_SEED`        | base stream seed (client i uses seed+i)  | 42 |
//! | `DF_MAP_THETA_MILLI` | Zipfian theta in thousandths             | 990 |

use std::sync::Barrier;
use std::time::Instant;

use bench::dfck_struct::StructVariant;
use bench::env_u64;
use bench::json::JsonRow;
use capsules::BoundaryStyle;
use pmem::{MemConfig, Mode, PMem, Stats, ThreadOptions};
use structs::{DetMap, GeneralDetMap, MapConfig, NormalizedDetMap, StructHandle, StructOp};

use crate::generator::{RequestGen, Zipfian};

/// The `fig_map` workload parameters (see the module table for the knobs).
#[derive(Clone, Debug)]
pub struct MapBenchConfig {
    /// Keyspace size: Zipfian ranks are drawn from `[0, keys)`.
    pub keys: u64,
    /// Total timed operations, split across the worker threads.
    pub ops: u64,
    /// Percentage of operations that are membership probes; the rest split
    /// evenly between inserts and removes.
    pub read_pct: u32,
    /// Keys inserted (the even ones first) before the timed window.
    pub prefill: u64,
    /// Initial bucket count — deliberately far below `keys / max_chain`, so
    /// the prefill *and* the timed window drive the resize protocol.
    pub buckets: u64,
    /// Worker-thread count.
    pub threads: usize,
    /// Base request-stream seed (client `i` streams from `seed + i`).
    pub seed: u64,
    /// Zipfian skew in thousandths (990 = YCSB's default 0.99).
    pub theta_milli: u64,
}

impl MapBenchConfig {
    /// Read the configuration from the `DF_MAP_*` environment.
    pub fn from_env() -> MapBenchConfig {
        let keys = env_u64("DF_MAP_KEYS", 1 << 20);
        MapBenchConfig {
            keys,
            ops: env_u64("DF_MAP_OPS", 1 << 20),
            read_pct: env_u64("DF_MAP_READ_PCT", 80).min(100) as u32,
            prefill: env_u64("DF_MAP_PREFILL", keys / 2).min(keys),
            buckets: env_u64("DF_MAP_BUCKETS", 1 << 14),
            threads: (env_u64("DF_MAP_THREADS", 4) as usize).max(1),
            seed: env_u64("DF_MAP_SEED", 42),
            theta_milli: env_u64("DF_MAP_THETA_MILLI", 990).min(999),
        }
    }

    fn theta(&self) -> f64 {
        self.theta_milli as f64 / 1000.0
    }

    fn map_config(&self) -> MapConfig {
        MapConfig::new(self.buckets, 8)
    }
}

enum BuiltMap {
    Plain(DetMap),
    General(GeneralDetMap),
    Normalized(NormalizedDetMap),
}

fn build(variant: StructVariant, mem: &PMem, threads: usize, cfg: &MapBenchConfig) -> BuiltMap {
    let t = mem.thread(0);
    match variant {
        StructVariant::MapIzraelevitz => BuiltMap::Plain(DetMap::new(&t, cfg.map_config())),
        StructVariant::MapGeneral => BuiltMap::General(GeneralDetMap::new(
            &t,
            threads,
            cfg.map_config(),
            true,
            BoundaryStyle::General,
        )),
        StructVariant::MapNormalized => BuiltMap::Normalized(NormalizedDetMap::new(
            &t,
            threads,
            cfg.map_config(),
            true,
            false,
        )),
        other => panic!("fig_map covers the map variants only, got {other:?}"),
    }
}

fn handle<'q, 't, 'm>(built: &'q BuiltMap, t: &'t pmem::PThread<'m>) -> Box<dyn StructHandle + 'q>
where
    't: 'q,
    'm: 'q,
{
    match built {
        BuiltMap::Plain(m) => Box::new(m.handle(t)),
        BuiltMap::General(m) => Box::new(m.handle(t)),
        BuiltMap::Normalized(m) => Box::new(m.handle(t)),
    }
}

/// Run the Zipfian mixed workload for one map variant; returns the JSON row
/// (`mops` > 0 is the `DF_REQUIRE_NONZERO` signal).
pub fn run_map_workload(variant: StructVariant, cfg: &MapBenchConfig) -> JsonRow {
    assert!(variant.is_map(), "fig_map drives map variants");
    let mem = PMem::new(MemConfig::new(cfg.threads).mode(Mode::SharedCache));
    let built = build(variant, &mem, cfg.threads, cfg);
    let opts = ThreadOptions {
        izraelevitz: matches!(variant, StructVariant::MapIzraelevitz),
    };

    // Prefill the even keys from thread 0 (untimed, uncounted): half the
    // Zipfian head is present and half absent, so probes, inserts and removes
    // all exercise both return paths. The bulk of the bucket-array growth
    // happens here, leaving the timed window with steady-state chains plus
    // the residual resizes the write mix still triggers.
    {
        let t = mem.thread_with(0, opts);
        let mut h = handle(&built, &t);
        for i in 0..cfg.prefill {
            let _ = h.apply(StructOp::Insert((2 * i) % cfg.keys.max(1)));
        }
    }
    mem.persist_everything();

    let zipf = Zipfian::new(cfg.keys, cfg.theta());
    let per_thread = (cfg.ops / cfg.threads as u64).max(1);
    let barrier = Barrier::new(cfg.threads);
    let results: Vec<(f64, Stats, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|pid| {
                let (mem, built, barrier, zipf) = (&mem, &built, &barrier, &zipf);
                s.spawn(move || {
                    let t = mem.thread_with(pid, opts);
                    let mut h = handle(built, &t);
                    let mut gen =
                        RequestGen::new(cfg.seed + pid as u64, zipf.clone(), cfg.read_pct);
                    let _ = t.take_stats();
                    barrier.wait();
                    let start = Instant::now();
                    for _ in 0..per_thread {
                        let _ = h.apply(gen.next_op());
                    }
                    (start.elapsed().as_secs_f64(), t.stats(), per_thread)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let wall = results.iter().map(|(t, _, _)| *t).fold(0.0f64, f64::max);
    let total_ops: u64 = results.iter().map(|(_, _, ops)| ops).sum();
    let total_stats: Stats = results.iter().map(|(_, s, _)| *s).sum();
    JsonRow {
        variant: variant.label().to_string(),
        threads: cfg.threads,
        mops: total_ops as f64 / wall / 1e6,
        flushes_per_op: total_stats.flushes_per_op(total_ops),
        fences_per_op: total_stats.fences_per_op(total_ops),
        extra: vec![
            ("keys", cfg.keys as f64),
            ("prefill", cfg.prefill as f64),
            ("read_pct", cfg.read_pct as f64),
        ],
    }
}

/// Run the whole figure: the three map variants under the `DF_MAP_*`
/// configuration, printing the usual table and emitting `BENCH_map.json`
/// when `DF_JSON` is set.
pub fn run_map_figure() -> Vec<JsonRow> {
    let cfg = MapBenchConfig::from_env();
    let wall = Instant::now();
    println!("# fig_map — Zipfian mixed workload on the detectable hash map family");
    println!(
        "# keys = {}, ops = {}, read_pct = {}%, prefill = {}, buckets = {}, threads = {}, theta = {:.3}",
        cfg.keys, cfg.ops, cfg.read_pct, cfg.prefill, cfg.buckets, cfg.threads, cfg.theta()
    );
    println!(
        "{:<10} {:<22} {:>10} {:>12} {:>12}",
        "threads", "variant", "Mops/s", "flushes/op", "fences/op"
    );
    let mut rows = Vec::new();
    for variant in [
        StructVariant::MapIzraelevitz,
        StructVariant::MapGeneral,
        StructVariant::MapNormalized,
    ] {
        let row = run_map_workload(variant, &cfg);
        println!(
            "{:<10} {:<22} {:>10.3} {:>12.2} {:>12.2}",
            row.threads, row.variant, row.mops, row.flushes_per_op, row.fences_per_op
        );
        rows.push(row);
    }
    bench::json::emit(
        "map",
        &[
            ("keys", cfg.keys),
            ("ops", cfg.ops),
            ("read_pct", cfg.read_pct as u64),
            ("prefill", cfg.prefill),
            ("buckets", cfg.buckets),
            ("threads", cfg.threads as u64),
            ("seed", cfg.seed),
            ("theta_milli", cfg.theta_milli),
        ],
        wall.elapsed().as_secs_f64(),
        &rows,
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MapBenchConfig {
        MapBenchConfig {
            keys: 512,
            ops: 600,
            read_pct: 70,
            prefill: 128,
            buckets: 4,
            threads: 2,
            seed: 7,
            theta_milli: 900,
        }
    }

    #[test]
    fn every_map_variant_runs_the_zipfian_mix() {
        for variant in [
            StructVariant::MapIzraelevitz,
            StructVariant::MapGeneral,
            StructVariant::MapNormalized,
        ] {
            let row = run_map_workload(variant, &tiny());
            assert!(row.mops > 0.0, "{variant:?} produced no throughput");
            assert!(row.flushes_per_op > 0.0, "{variant:?} should flush");
        }
    }

    #[test]
    fn config_defaults_cover_the_million_key_scenario() {
        // The committed baseline must carry a ≥ 2²⁰-key Zipfian row; pin the
        // defaults so a stray env-knob edit can't silently shrink it.
        let keys = 1u64 << 20;
        assert_eq!(env_u64("DF_MAP_KEYS", keys), keys);
        let cfg = tiny();
        assert!(cfg.map_config().initial_buckets.is_power_of_two());
    }
}
