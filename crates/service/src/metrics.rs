//! Service-side measurement: a mergeable log-linear latency histogram
//! (HDR-style: power-of-two segments, linear sub-buckets) and the report
//! types the drill engine aggregates into `BENCH_service.json`.

use std::time::Duration;

/// Linear sub-buckets per power-of-two segment. 32 gives ~3% relative
/// precision, plenty for p50/p99/p999 reporting.
const SUB_BUCKETS: usize = 32;
/// Power-of-two segments: covers up to 2^40 ns ≈ 18 minutes per sample.
const SEGMENTS: usize = 41;

/// A fixed-size log-linear histogram of nanosecond latencies. Recording is
/// O(1), merging is element-wise, percentiles walk the cumulative counts.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: vec![0; SEGMENTS * SUB_BUCKETS],
            total: 0,
            max_ns: 0,
        }
    }

    fn bucket(ns: u64) -> usize {
        if ns < SUB_BUCKETS as u64 {
            return ns as usize;
        }
        let seg = 63 - ns.leading_zeros() as usize; // floor(log2), >= 5 here
        let seg = seg.min(SEGMENTS - 1);
        // Position of the top SUB_BUCKETS-worth of bits below the leading one.
        let shift = seg.saturating_sub(SUB_BUCKETS.trailing_zeros() as usize);
        let sub = ((ns >> shift) as usize) & (SUB_BUCKETS - 1);
        seg * SUB_BUCKETS + sub
    }

    /// Value representative of a bucket (its upper edge, so percentiles are
    /// conservative).
    fn bucket_value(idx: usize) -> u64 {
        let seg = idx / SUB_BUCKETS;
        let sub = (idx % SUB_BUCKETS) as u64;
        if seg == 0 {
            // Segment 0 holds the exact values below SUB_BUCKETS.
            return sub;
        }
        let shift = seg.saturating_sub(SUB_BUCKETS.trailing_zeros() as usize);
        ((1u64 << seg) | (sub << shift)) + (1u64 << shift) - 1
    }

    /// Record one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.counts[Self::bucket(ns)] += 1;
        self.total += 1;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The latency at quantile `q` in `[0, 1]` (0 if the histogram is empty).
    /// Reported from bucket upper edges except for the exact maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_value(idx).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// The standard report triple (p50, p99, p999) in nanoseconds.
    pub fn percentiles(&self) -> Percentiles {
        Percentiles {
            p50_ns: self.quantile(0.50),
            p99_ns: self.quantile(0.99),
            p999_ns: self.quantile(0.999),
            max_ns: self.max_ns,
            count: self.total,
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("max_ns", &self.max_ns)
            .finish()
    }
}

/// Snapshot of a histogram's headline percentiles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Percentiles {
    /// Median latency in nanoseconds.
    pub p50_ns: u64,
    /// 99th percentile latency in nanoseconds.
    pub p99_ns: u64,
    /// 99.9th percentile latency in nanoseconds.
    pub p999_ns: u64,
    /// Maximum recorded latency in nanoseconds.
    pub max_ns: u64,
    /// Number of samples behind the percentiles.
    pub count: u64,
}

/// Which crash shape a drill applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DrillKind {
    /// One shard's machine crashed (`crash_all` on that shard's arena).
    ShardLocal,
    /// Every shard crashed at once — the full-system power failure.
    FullSystem,
}

impl DrillKind {
    /// Short label for tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            DrillKind::ShardLocal => "shard",
            DrillKind::FullSystem => "system",
        }
    }
}

/// Timed outcome of one kill-restart drill.
#[derive(Clone, Debug)]
pub struct DrillRecord {
    /// Drill sequence number (0-based).
    pub index: usize,
    /// Crash shape.
    pub kind: DrillKind,
    /// The shard that was killed (the lowest-numbered one for full-system).
    pub victim: usize,
    /// Kill-flag set → victim quiesced (workers unwound and joined).
    pub detect: Duration,
    /// Quiesced → recovery replay done and the shard serving again. For
    /// full-system drills this spans until *every* shard serves again.
    pub replay: Duration,
    /// Total kill → ready time (`detect + replay` plus scheduling slack).
    pub total: Duration,
    /// Operations completed by non-victim shards while the victim was down
    /// (zero by definition for full-system drills).
    pub healthy_ops_during_outage: u64,
    /// Whether recovery beat the configured deadline.
    pub within_deadline: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_orders_quantiles_and_tracks_max() {
        let mut h = LatencyHistogram::new();
        for ns in [100u64, 200, 300, 400, 500, 10_000, 1_000_000] {
            h.record(Duration::from_nanos(ns));
        }
        assert_eq!(h.count(), 7);
        let p = h.percentiles();
        assert!(p.p50_ns >= 300 && p.p50_ns <= 450, "p50 {}", p.p50_ns);
        assert!(p.p99_ns >= p.p50_ns);
        assert!(p.p999_ns >= p.p99_ns);
        assert_eq!(p.max_ns, 1_000_000);
        assert!(p.p999_ns <= p.max_ns);
    }

    #[test]
    fn histogram_bucket_error_is_bounded() {
        // The representative value of any sample's bucket must be within ~2x
        // below and within one sub-bucket width above the sample.
        let mut probe = 1u64;
        while probe < 1 << 39 {
            let idx = LatencyHistogram::bucket(probe);
            let rep = LatencyHistogram::bucket_value(idx);
            assert!(rep >= probe, "rep {rep} < sample {probe}");
            assert!(rep <= probe.saturating_mul(2).max(SUB_BUCKETS as u64), "rep {rep} for {probe}");
            probe = probe * 3 + 1;
        }
    }

    #[test]
    fn merge_is_count_additive() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for i in 1..=100u64 {
            a.record(Duration::from_nanos(i * 10));
            b.record(Duration::from_nanos(i * 1000));
        }
        let pre_a = a.quantile(0.5);
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert!(a.quantile(0.5) >= pre_a);
        assert_eq!(a.percentiles().max_ns, 100_000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.percentiles(), Percentiles::default());
    }
}
