//! A sharded service harness over the delay-free persistent structures, with
//! kill-restart drills: crash a live system under traffic, recover on a
//! deadline, keep serving.
//!
//! This crate turns the repo's simulated-pmem machinery into something shaped
//! like a small keyed service and then attacks it the way the paper's model
//! says a faulty machine would — processes die at arbitrary simulated
//! instructions and come back with only their persistent state:
//!
//! - [`shard`]: one shard = one arena, one detectable [`structs::GeneralSet`]
//!   and a worker pool, living through kill-restart *incarnations* over the
//!   same surviving arena. A ticketed exactly-once protocol settles the
//!   request a kill interrupted (resumed, read back, or
//!   provably-never-started and re-executed), checked by a per-key balance
//!   oracle at shutdown.
//! - [`router`]: the client edge — hash routing plus bounded
//!   retry-with-backoff that degrades (never blocks) when a shard is down.
//! - [`generator`]: seeded open-loop traffic — splitmix64 streams, YCSB-style
//!   Zipfian keys over keyspaces of millions, configurable read/write mix.
//! - [`drill`]: the drill engine — run executors, clients, and a kill
//!   schedule (round-robin shard-local kills, periodically a full-system
//!   crash), timing detect/replay/total per recovery against a deadline.
//! - [`metrics`]: mergeable log-linear latency histograms and the drill
//!   record types behind `BENCH_service.json`.
//! - [`map_bench`]: the `fig_map` figure — the Zipf-skewed million-key mixed
//!   workload on the detectable hash map family (`BENCH_map.json`).
//!
//! The `service_drill` binary wires this to `DF_SERVICE_*` environment knobs
//! and emits `BENCH_service.json` rows (schema `delayfree-bench-v1`).

pub mod drill;
pub mod generator;
pub mod map_bench;
pub mod metrics;
pub mod router;
pub mod shard;

pub use drill::{run_service, ServiceConfig, ServiceReport};
pub use generator::{hash_key, RequestGen, SplitMix64, Zipfian};
pub use metrics::{DrillKind, DrillRecord, LatencyHistogram, Percentiles};
pub use router::{RetryPolicy, RouteError, Router, RouterStats};
pub use shard::{run_shard, EnqueueError, Request, ShardReport, ShardShared};
