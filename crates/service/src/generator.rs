//! Seeded open-loop request generation: splitmix64 streams, a YCSB-style
//! Zipfian key sampler over keyspaces of millions, and a configurable
//! read/write mix mapped onto [`StructOp`]s.
//!
//! Everything here is deterministic in the seed so a drill run is replayable:
//! the same `(seed, keys, theta, read_pct)` produces the same request stream
//! per client, independent of scheduling.

use structs::StructOp;

/// Minimal splitmix64 PRNG — the same finalizer the crash layer uses for its
/// per-pid stream seeds, kept local so the service crate stays deterministic
/// without the (stubbed) `rand` crate.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded with `seed` (any value, including 0, is fine).
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform double in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of the next output.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        // Multiply-shift reduction (Lemire); bias is negligible for harness use.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// One-time hash of a key (stateless splitmix64 finalizer). The router uses it
/// to spread the Zipfian head across shards instead of concentrating all hot
/// keys on shard 0.
pub fn hash_key(k: u64) -> u64 {
    let mut z = k.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Zipfian sampler over `[0, items)` with skew `theta` (YCSB's
/// `ZipfianGenerator` closed form: one `zeta(n, theta)` precomputation, O(1)
/// per sample). `theta == 0` degenerates to the uniform distribution; YCSB's
/// default skew is `0.99`. Rank 0 is the most popular key.
#[derive(Clone, Debug)]
pub struct Zipfian {
    items: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    half_pow_theta: f64,
}

impl Zipfian {
    /// Build a sampler for `items` keys with skew `theta` (`0.0 <= theta < 1.0`).
    /// The `zeta` precomputation is O(items) — done once, shared by clones.
    pub fn new(items: u64, theta: f64) -> Zipfian {
        assert!(items > 0, "zipfian needs a nonempty keyspace");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = Self::zeta(items, theta);
        let zeta2 = Self::zeta(2.min(items), theta);
        // Degenerate single-key keyspace: zeta2 == zetan makes the eta
        // denominator 0.0 and the division NaN. Every sample is rank 0
        // regardless, so pin eta to a harmless finite value.
        let eta = if items == 1 {
            0.0
        } else {
            (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan)
        };
        Zipfian {
            items,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta,
            half_pow_theta: 0.5f64.powf(theta),
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Sample a rank in `[0, items)`; rank 0 is the hottest.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        if self.theta == 0.0 {
            return rng.next_below(self.items);
        }
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + self.half_pow_theta {
            return 1;
        }
        let rank = (self.items as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.items - 1)
    }

    /// The keyspace size.
    pub fn items(&self) -> u64 {
        self.items
    }
}

/// A seeded per-client request stream: Zipfian keys, `read_pct`% membership
/// probes, the rest split evenly between inserts and removes.
#[derive(Clone, Debug)]
pub struct RequestGen {
    rng: SplitMix64,
    zipf: Zipfian,
    read_pct: u32,
}

impl RequestGen {
    /// A stream for one client. Give each client a distinct `seed` (e.g.
    /// `base_seed + client_index`) for independent streams.
    pub fn new(seed: u64, zipf: Zipfian, read_pct: u32) -> RequestGen {
        assert!(read_pct <= 100);
        RequestGen {
            rng: SplitMix64::new(seed),
            zipf,
            read_pct,
        }
    }

    /// The next request in the stream.
    pub fn next_op(&mut self) -> StructOp {
        let key = self.zipf.sample(&mut self.rng);
        let roll = self.rng.next_below(100) as u32;
        if roll < self.read_pct {
            StructOp::Contains(key)
        } else if (roll - self.read_pct) % 2 == 0 {
            StructOp::Insert(key)
        } else {
            StructOp::Remove(key)
        }
    }
}

/// The key a request addresses (service requests are always keyed).
pub fn op_key(op: StructOp) -> u64 {
    match op {
        StructOp::Insert(k) | StructOp::Remove(k) | StructOp::Contains(k) => k,
        other => panic!("service requests are keyed set operations, got {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_bounded() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.next_below(13) < 13);
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let z = Zipfian::new(1_000_000, 0.99);
        let mut rng = SplitMix64::new(1);
        let mut head = 0usize;
        for _ in 0..10_000 {
            let rank = z.sample(&mut rng);
            assert!(rank < 1_000_000);
            if rank < 10 {
                head += 1;
            }
        }
        // With theta 0.99 over 1M keys, far more than a uniform share of
        // samples must land on the 10 hottest ranks (uniform share: ~0.001%).
        assert!(head > 2_000, "only {head}/10000 samples hit the head");
    }

    #[test]
    fn zipfian_theta_zero_is_roughly_uniform() {
        let z = Zipfian::new(100, 0.0);
        let mut rng = SplitMix64::new(3);
        let mut counts = [0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(min > 500 && max < 2000, "min {min} max {max}");
    }

    #[test]
    fn zipfian_single_key_keyspace_is_finite_and_deterministic() {
        // Regression: items == 1 passed the `items > 0` assert but divided by
        // `1.0 - zeta2/zetan == 0.0`, leaving a NaN eta inside the sampler.
        let z = Zipfian::new(1, 0.99);
        let dbg = format!("{z:?}");
        assert!(!dbg.contains("NaN"), "sampler state must stay finite: {dbg}");
        let mut rng = SplitMix64::new(11);
        for _ in 0..1_000 {
            assert_eq!(z.sample(&mut rng), 0, "the only key is rank 0");
        }
    }

    #[test]
    fn zipfian_head_matches_closed_form() {
        // Empirical head probabilities against the closed form p(rank r) =
        // (1/(r+1)^theta) / zeta(n, theta) for a small keyspace.
        let (items, theta) = (5u64, 0.9f64);
        let zetan: f64 = (1..=items).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let z = Zipfian::new(items, theta);
        let mut rng = SplitMix64::new(17);
        let mut counts = [0u64; 5];
        let n = 200_000u64;
        for _ in 0..n {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for (rank, &count) in counts.iter().enumerate().take(2) {
            let expected = (1.0 / ((rank + 1) as f64).powf(theta)) / zetan;
            let observed = count as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.02,
                "rank {rank}: observed {observed:.4} vs closed form {expected:.4}"
            );
        }
    }

    #[test]
    fn request_mix_respects_read_fraction() {
        let zipf = Zipfian::new(1000, 0.5);
        let mut gen = RequestGen::new(9, zipf, 80);
        let (mut reads, mut writes) = (0, 0);
        for _ in 0..10_000 {
            match gen.next_op() {
                StructOp::Contains(_) => reads += 1,
                StructOp::Insert(_) | StructOp::Remove(_) => writes += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        let frac = reads as f64 / (reads + writes) as f64;
        assert!((0.75..0.85).contains(&frac), "read fraction {frac}");
    }

    #[test]
    fn streams_are_replayable_and_distinct_per_seed() {
        let zipf = Zipfian::new(1000, 0.9);
        let stream = |seed| {
            let mut g = RequestGen::new(seed, zipf.clone(), 50);
            (0..50).map(|_| g.next_op()).collect::<Vec<_>>()
        };
        assert_eq!(stream(1), stream(1));
        assert_ne!(stream(1), stream(2));
    }
}
