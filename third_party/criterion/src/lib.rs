//! Offline stand-in for the `criterion` crate (no network in this build
//! environment). Implements the subset this workspace's benches use:
//! `criterion_group!` / `criterion_main!`, benchmark groups with
//! `sample_size`, `bench_function`, `bench_with_input`, a [`Bencher`] with
//! `iter`, and [`BenchmarkId`].
//!
//! Measurement is a plain wall-clock loop — a short warm-up, then timed
//! batches — reporting the best observed ns/iteration. There is no outlier
//! rejection, no HTML report and no saved baselines. When invoked with
//! `--test` (as `cargo test --benches` does for `harness = false` targets)
//! each benchmark body runs exactly once so test runs stay fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point handed to the functions registered with [`criterion_group!`].
pub struct Criterion {
    test_mode: bool,
    /// Substring filter from the command line (`cargo bench -- <filter>`).
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo/criterion conventionally pass; ignore them.
                "--bench" | "--nocapture" | "--quiet" | "-q" => {}
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    fn runs(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        if self.criterion.runs(&full) {
            let mut b = Bencher::new(self.criterion.test_mode);
            f(&mut b);
            b.report(&full);
        }
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        if self.criterion.runs(&full) {
            let mut b = Bencher::new(self.criterion.test_mode);
            f(&mut b, input);
            b.report(&full);
        }
        self
    }

    /// End the group (no-op; present for API compatibility).
    pub fn finish(&mut self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build an id from a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Build an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Throughput hint (accepted, not reported).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times a closure over repeated iterations.
pub struct Bencher {
    test_mode: bool,
    best_ns_per_iter: Option<f64>,
    total_iters: u64,
}

impl Bencher {
    fn new(test_mode: bool) -> Bencher {
        Bencher {
            test_mode,
            best_ns_per_iter: None,
            total_iters: 0,
        }
    }

    /// Run `f` repeatedly, recording the best batch time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            self.total_iters = 1;
            return;
        }
        // Warm-up: run until ~5ms has elapsed, sizing the measurement batches.
        let warmup = Duration::from_millis(5);
        let start = Instant::now();
        let mut warmup_iters = 0u64;
        while start.elapsed() < warmup {
            std::hint::black_box(f());
            warmup_iters += 1;
        }
        let per_iter = start.elapsed().as_nanos() as u64 / warmup_iters.max(1);
        // Aim for batches of ~2ms, measured over a ~40ms budget.
        let batch = (2_000_000 / per_iter.max(1)).clamp(1, 1_000_000);
        let budget = Duration::from_millis(40);
        let run_start = Instant::now();
        while run_start.elapsed() < budget {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            self.total_iters += batch;
            if self.best_ns_per_iter.map_or(true, |best| ns < best) {
                self.best_ns_per_iter = Some(ns);
            }
        }
    }

    fn report(&self, full_name: &str) {
        match self.best_ns_per_iter {
            Some(ns) => println!("{full_name:<48} {ns:>12.1} ns/iter ({} iters)", self.total_iters),
            None if self.test_mode => println!("{full_name:<48} ok (test mode)"),
            None => println!("{full_name:<48} (no measurement)"),
        }
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_closure_in_test_mode() {
        let mut b = Bencher::new(true);
        let mut hits = 0u32;
        b.iter(|| hits += 1);
        assert_eq!(hits, 1);
        assert_eq!(b.total_iters, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter("MSQ").0, "MSQ");
        assert_eq!(BenchmarkId::new("enq", 4).0, "enq/4");
    }

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut ran = false;
        let mut g = c.benchmark_group("g");
        g.sample_size(10).bench_function("f", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("nomatch".into()),
        };
        let mut ran = false;
        c.benchmark_group("g").bench_function("f", |_| ran = true);
        assert!(!ran);
    }
}
