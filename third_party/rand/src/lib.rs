//! Offline stand-in for the `rand` crate (no network in this build
//! environment). Implements the subset this workspace uses: `rngs::SmallRng`
//! seeded via `SeedableRng::seed_from_u64`, and the `Rng` methods `gen_bool`,
//! `gen_range` and `next_u64`. The generator is xoshiro256++ with a splitmix64
//! seed expansion — the same construction the real `SmallRng` uses on 64-bit
//! targets, so sequences are high-quality and reproducible (though not
//! bit-identical to the real crate's).

use std::ops::Range;

/// Seeding support (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-value generation (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// `true` with probability `prob`. Panics if `prob` is outside `[0, 1]`.
    fn gen_bool(&mut self, prob: f64) -> bool {
        assert!((0.0..=1.0).contains(&prob), "gen_bool probability {prob} not in [0,1]");
        if prob >= 1.0 {
            return true;
        }
        // 53 random bits → uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < prob
    }

    /// A uniformly random value in `range` (half-open). Panics on empty ranges.
    fn gen_range(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range called with empty range");
        let span = range.end - range.start;
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return range.start + v % span;
            }
        }
    }
}

/// Namespace mirror of `rand::rngs`.
pub mod rngs {
    /// A small, fast RNG: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl super::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, per the xoshiro authors' recommendation.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl super::Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_reproducible() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_bool_extremes_are_exact() {
        let mut r = SmallRng::seed_from_u64(1);
        assert!((0..256).all(|_| !r.gen_bool(0.0)));
        assert!((0..256).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut r = SmallRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits} hits for p=0.25");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let v = r.gen_range(10..17);
            assert!((10..17).contains(&v));
        }
    }
}
