//! Offline stand-in for the `proptest` crate (no network in this build
//! environment). Supports the subset this workspace uses:
//!
//! * the [`proptest!`] macro wrapping `#[test]` functions whose arguments are
//!   drawn `name in strategy`,
//! * half-open integer ranges and tuples of strategies as strategies,
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`.
//!
//! Instead of the real crate's adaptive shrinking search, each property runs a
//! fixed number of deterministically seeded cases (default 256, override with
//! `PROPTEST_CASES`). Failures report the sampled inputs via the assertion
//! message; there is no shrinking.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Number of cases run per property unless `PROPTEST_CASES` overrides it.
pub const DEFAULT_CASES: u32 = 256;

/// Resolve the number of cases to run per property.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

/// Deterministic source of randomness for property sampling.
pub struct TestRng(SmallRng);

impl TestRng {
    /// A fresh RNG with a fixed seed, so failures are reproducible.
    pub fn deterministic() -> TestRng {
        TestRng(SmallRng::seed_from_u64(0x5EED_CAFE_F00D_0001))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn range_u64(&mut self, r: Range<u64>) -> u64 {
        self.0.gen_range(r)
    }
}

/// A value generator. Mirrors `proptest::strategy::Strategy` in spirit only:
/// sampling is direct, with edge cases (range endpoints) visited first.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;
    /// Produce the `case`-th sampled value.
    fn sample(&self, rng: &mut TestRng, case: u32) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng, case: u32) -> $t {
                assert!(self.start < self.end, "empty proptest range");
                // Hit the boundaries in the first two cases, then sample.
                match case {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => {
                        let span = (self.end - self.start) as u64;
                        self.start + (rng.range_u64(0..span) as $t)
                    }
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng, case: u32) -> $t {
                assert!(self.start < self.end, "empty proptest range");
                match case {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => {
                        let span = (self.end as i128 - self.start as i128) as u64;
                        (self.start as i128 + rng.range_u64(0..span) as i128) as $t
                    }
                }
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

/// Strategy that always yields `true` or `false` uniformly.
impl Strategy for Range<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng, _case: u32) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng, case: u32) -> Self::Value {
                ($(self.$idx.sample(rng, case),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Everything a `proptest!` call site needs in scope.
pub mod prelude {
    pub use crate::{
        cases, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy, TestRng,
    };
}

/// Wrap `#[test]` functions whose arguments are sampled from strategies.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::TestRng::deterministic();
            for case in 0..$crate::cases() {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng, case);)*
                $body
            }
        }
    )*};
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn tuples_sample_componentwise(p in (0u64..10, 0usize..5, 0u64..3)) {
            prop_assert!(p.0 < 10 && p.1 < 5 && p.2 < 3);
        }
    }

    #[test]
    fn edge_cases_come_first() {
        let mut rng = TestRng::deterministic();
        assert_eq!((5u64..9).sample(&mut rng, 0), 5);
        assert_eq!((5u64..9).sample(&mut rng, 1), 8);
    }

    #[test]
    fn case_count_is_positive() {
        assert!(cases() > 0);
    }
}
