//! Offline stand-in for the `parking_lot` crate (no network in this build
//! environment). Provides the subset of the API this workspace uses — `Mutex`
//! and `RwLock` whose lock methods return guards directly instead of
//! `Result`s — implemented over `std::sync` with poison errors ignored
//! (a poisoned lock simply hands back the inner guard, matching parking_lot's
//! no-poisoning semantics).

use std::fmt;
use std::sync::{self, TryLockError};

/// A mutual-exclusion primitive; `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Attempt to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock; lock methods return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// RAII write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
