#!/usr/bin/env python3
"""bench-regress: gate fresh BENCH_*.json against the committed baselines.

Checks (all fatal, exit 1, every failure reported before exiting):

1. fig7 capsule-variant 4-thread throughput must not regress more than
   REGRESS_TOL (default 20%) against the committed baseline's same cell.
2. fig7 General and Normalized-Opt must actually *scale*: their 4-thread
   mops must exceed the seed's flat ~3.7 Mops ceiling (the pre-adaptive
   plateau, DESIGN.md §11), and be >= SCALE_MIN (default 1.5) x their own
   1-thread mops. The scaling ratio is within-run, so it is robust to the
   absolute speed of the machine.
3. instr_overhead disarmed rows must stay at-or-above the committed
   baseline: the crash-point plumbing must remain free when disarmed.
   "At-or-above" is applied with a noise band (DISARM_TOL, default 30%):
   these are wall-clock rates from shared single-core CI containers whose
   run-to-run spread is ~25-30%, and a real disarmed-path regression
   (accidentally armed bookkeeping) shows up as 2x+, far outside the band.
   Tighten via DF_REGRESS_DISARM_TOL on quiet hardware.
4. fig_map (--map): every map-variant row of the committed BENCH_map.json
   must be present fresh with nonzero throughput no more than MAP_TOL
   (default 60%) below the baseline, and the baseline itself must carry the
   million-key scenario (params.keys >= 2^20). The wide default tolerance is
   deliberate: the mixed workload includes bucket-array resizes, whose
   placement relative to the timed window shifts with machine speed.

Usage:
  regress.py --baseline benchmarks \
             --fig7 fresh/BENCH_fig7.json \
             [--instr fresh/BENCH_instr_overhead.json] \
             [--map fresh/BENCH_map.json]

Env overrides: DF_REGRESS_TOL, DF_REGRESS_SCALE_MIN, DF_REGRESS_CEILING,
DF_REGRESS_DISARM_TOL, DF_REGRESS_MAP_TOL.
"""

import argparse
import json
import os
import sys

CAPSULE_VARIANTS = ["General", "General-Opt", "Normalized", "Normalized-Opt"]
SCALING_VARIANTS = ["General", "Normalized-Opt"]

REGRESS_TOL = float(os.environ.get("DF_REGRESS_TOL", "0.20"))
SCALE_MIN = float(os.environ.get("DF_REGRESS_SCALE_MIN", "1.5"))
SEED_CEILING = float(os.environ.get("DF_REGRESS_CEILING", "3.7"))
DISARM_TOL = float(os.environ.get("DF_REGRESS_DISARM_TOL", "0.30"))
MAP_TOL = float(os.environ.get("DF_REGRESS_MAP_TOL", "0.60"))
MILLION_KEYS = 1 << 20


def rows(doc, variant=None, threads=None):
    out = []
    for r in doc["results"]:
        if variant is not None and r["variant"] != variant:
            continue
        if threads is not None and r["threads"] != threads:
            continue
        out.append(r)
    return out


def mops(doc, variant, threads):
    matched = rows(doc, variant, threads)
    if not matched:
        return None
    return matched[0]["mops"]


def check_fig7(baseline, fresh, failures):
    # fig7 sweeps the paper's figure-7 variant set (General and
    # Normalized-Opt represent the capsule family there); gate whichever
    # capsule variants the committed baseline actually carries.
    present = [v for v in CAPSULE_VARIANTS if rows(baseline, v, 4)]
    if not present:
        failures.append("fig7 baseline has no capsule-variant rows at 4 threads")
    for variant in present:
        base = mops(baseline, variant, 4)
        new = mops(fresh, variant, 4)
        if new is None:
            failures.append(f"fig7 {variant}@4t: fresh row missing")
            continue
        floor = base * (1.0 - REGRESS_TOL)
        if new < floor:
            failures.append(
                f"fig7 {variant}@4t regressed: {new:.3f} < {floor:.3f} "
                f"(baseline {base:.3f}, tol {REGRESS_TOL:.0%})"
            )
        else:
            print(f"ok fig7 {variant}@4t: {new:.3f} vs baseline {base:.3f}")
    for variant in SCALING_VARIANTS:
        one = mops(fresh, variant, 1)
        four = mops(fresh, variant, 4)
        if one is None or four is None:
            failures.append(f"fig7 {variant}: 1t/4t row missing")
            continue
        if four <= SEED_CEILING:
            failures.append(
                f"fig7 {variant}@4t does not clear the seed ceiling: "
                f"{four:.3f} <= {SEED_CEILING} Mops"
            )
        if four < SCALE_MIN * one:
            failures.append(
                f"fig7 {variant} does not scale: 4t {four:.3f} < "
                f"{SCALE_MIN}x 1t {one:.3f}"
            )
        else:
            print(f"ok fig7 {variant} scaling: 1t {one:.3f} -> 4t {four:.3f}")


def check_instr(baseline, fresh, failures):
    disarmed = [r for r in baseline["results"] if r["variant"].endswith("/disarmed")]
    if not disarmed:
        failures.append("instr_overhead baseline has no disarmed rows")
        return
    for r in disarmed:
        variant = r["variant"]
        new = mops(fresh, variant, r["threads"])
        if new is None:
            failures.append(f"instr_overhead {variant}: fresh row missing")
            continue
        floor = r["mops"] * (1.0 - DISARM_TOL)
        if new < floor:
            failures.append(
                f"instr_overhead {variant} regressed: {new:.3f} < {floor:.3f} "
                f"(baseline {r['mops']:.3f})"
            )
        else:
            print(f"ok instr_overhead {variant}: {new:.3f} vs baseline {r['mops']:.3f}")


def check_map(baseline, fresh, failures):
    keys = baseline.get("params", {}).get("keys", 0)
    if keys < MILLION_KEYS:
        failures.append(
            f"fig_map baseline is not the million-key scenario: "
            f"params.keys = {keys} < {MILLION_KEYS}"
        )
    base_rows = baseline["results"]
    if not base_rows:
        failures.append("fig_map baseline has no rows")
    for r in base_rows:
        variant = r["variant"]
        new = mops(fresh, variant, r["threads"])
        if new is None:
            failures.append(f"fig_map {variant}: fresh row missing")
            continue
        floor = r["mops"] * (1.0 - MAP_TOL)
        if new <= 0.0 or new < floor:
            failures.append(
                f"fig_map {variant} regressed: {new:.3f} < {floor:.3f} "
                f"(baseline {r['mops']:.3f}, tol {MAP_TOL:.0%})"
            )
        else:
            print(f"ok fig_map {variant}: {new:.3f} vs baseline {r['mops']:.3f}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True, help="directory with committed BENCH_*.json")
    ap.add_argument("--fig7", required=True, help="fresh BENCH_fig7.json")
    ap.add_argument("--instr", help="fresh BENCH_instr_overhead.json (optional)")
    ap.add_argument("--map", dest="map_json", help="fresh BENCH_map.json (optional)")
    args = ap.parse_args()

    failures = []
    with open(os.path.join(args.baseline, "BENCH_fig7.json")) as f:
        fig7_base = json.load(f)
    with open(args.fig7) as f:
        fig7_fresh = json.load(f)
    check_fig7(fig7_base, fig7_fresh, failures)

    if args.instr:
        with open(os.path.join(args.baseline, "BENCH_instr_overhead.json")) as f:
            instr_base = json.load(f)
        with open(args.instr) as f:
            instr_fresh = json.load(f)
        check_instr(instr_base, instr_fresh, failures)

    if args.map_json:
        with open(os.path.join(args.baseline, "BENCH_map.json")) as f:
            map_base = json.load(f)
        with open(args.map_json) as f:
            map_fresh = json.load(f)
        check_map(map_base, map_fresh, failures)

    if failures:
        for msg in failures:
            print(f"FAIL {msg}", file=sys.stderr)
        sys.exit(1)
    print("bench-regress: all gates passed")


if __name__ == "__main__":
    main()
